//! TCP channels implementing the engine's [`Transport`] contract.
//!
//! Each engine channel becomes one or more TCP connections carrying the wire
//! frames of [`crate::wire`]:
//!
//! * a **sender handle** serializes messages under a mutex and writes one
//!   complete frame per message straight to the socket (the engine already
//!   batches tuples, so a frame is ≥ one transport batch — no extra
//!   buffering layer is needed, and a blocking `write` propagates TCP
//!   back-pressure to the sending stage). Handles are cloned per sending
//!   stage instance; when the **last** clone drops, an [`tag::EOF`] frame is
//!   written and the write side shuts down.
//! * a **receiver handle** owns one reader thread per incoming connection;
//!   readers decode frames and push messages into one shared *bounded*
//!   crossbeam queue sized by the engine's `queue_capacity`-derived batch
//!   budget ([`slb_engine::capacity_in_batches`]). A full queue blocks the
//!   readers, the kernel's TCP window fills, and the remote senders block —
//!   the same back-pressure chain as the in-process backend, with the
//!   kernel's socket buffers as the only extra slack.
//!
//! FIFO per sender holds: each sending stage writes its frames in order to
//! one socket, TCP preserves byte order, and the reader enqueues in frame
//! order. That is exactly the ordering the window-punctuation protocol
//! needs.
//!
//! `Instant`s never cross a socket. A [`TcpTransport`] carries the run's
//! *epoch*; timestamps travel as µs-since-epoch and are rebased on arrival.
//! In-process (the differential and perf suites) both endpoints share one
//! epoch, so latency metrics are exact up to µs quantization; across
//! processes `slb-node` aligns epochs through the orchestrator's wall-clock
//! handshake, so metrics additionally absorb (same-machine) clock offset.
//! Merged *counts* — the correctness obligation — never depend on
//! timestamps.
//!
//! A reader thread that receives a *malformed* frame **aborts the
//! process**: inside a run, a corrupt frame means a bug (or a foreign
//! writer), and anything softer would let the run finish looking healthy —
//! a detached thread's panic is indistinguishable from a clean disconnect
//! to the receiving stage, which would silently break the exactness
//! invariant the engine is built around. The codec itself stays total
//! (errors, not panics) — see the `wire_props` suite.

use std::io::{BufReader, Write};
use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender, TryRecvError};
use slb_core::WirePartial;
use slb_engine::transport::{
    ChannelClosed, FeedbackReceiver, FeedbackSender, PartialReceiver, PartialSender, PartialWindow,
    ReplayRequest, SourceMessage, Transport, TupleBatch, TupleReceiver, TupleSender,
};
use slb_engine::WindowId;

use crate::wire::{
    self, encode_feedback_frame, encode_partial_frame, encode_tuple_frame, read_frame, tag,
    FeedbackFrame, PartialFrame, TupleFrame,
};

/// Converts an [`Instant`] to wire form: µs since the transport epoch.
pub fn instant_to_us(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_micros() as u64
}

/// Rebases a wire timestamp onto the local clock: epoch + µs.
pub fn us_to_instant(epoch: Instant, us: u64) -> Instant {
    epoch
        .checked_add(Duration::from_micros(us))
        .unwrap_or(epoch)
}

/// Socket + reusable encode buffer, locked per send.
struct FramedWriter {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Shared core of a sender handle. On last-drop it writes an EOF frame and
/// shuts the write side down, which is what terminates the remote reader.
struct SenderCore {
    writer: Mutex<FramedWriter>,
    epoch: Instant,
}

impl SenderCore {
    fn new(stream: TcpStream, epoch: Instant) -> Self {
        Self {
            writer: Mutex::new(FramedWriter {
                stream,
                buf: Vec::with_capacity(4 * 1024),
            }),
            epoch,
        }
    }

    /// Encodes with `encode` into the shared buffer and writes one frame.
    fn send_frame(&self, encode: impl FnOnce(&mut Vec<u8>, Instant)) -> Result<(), ChannelClosed> {
        let mut writer = self.writer.lock().expect("sender lock poisoned");
        let FramedWriter { stream, buf } = &mut *writer;
        buf.clear();
        encode(buf, self.epoch);
        stream.write_all(buf).map_err(|_| ChannelClosed)
    }
}

impl Drop for SenderCore {
    fn drop(&mut self) {
        // Best effort: the peer may already be gone.
        if let Ok(mut writer) = self.writer.lock() {
            let FramedWriter { stream, buf } = &mut *writer;
            buf.clear();
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.push(tag::EOF);
            let _ = stream.write_all(buf);
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
    }
}

/// Source → worker sender over one TCP connection. Clonable; the connection
/// carries an EOF frame when the last clone drops.
#[derive(Clone)]
pub struct TcpTupleSender {
    core: Arc<SenderCore>,
}

impl TcpTupleSender {
    /// Wraps a connected stream. `epoch` anchors the wire timestamps.
    pub fn new(stream: TcpStream, epoch: Instant) -> Self {
        let _ = stream.set_nodelay(true);
        Self {
            core: Arc::new(SenderCore::new(stream, epoch)),
        }
    }
}

impl TupleSender for TcpTupleSender {
    fn send(&self, message: SourceMessage) -> Result<(), ChannelClosed> {
        self.core.send_frame(|buf, epoch| {
            let frame = match message {
                SourceMessage::Batch(TupleBatch {
                    keys,
                    window,
                    source,
                    seq,
                    emitted_at,
                }) => TupleFrame::Batch {
                    window,
                    source: source as u32,
                    seq,
                    emitted_us: instant_to_us(epoch, emitted_at),
                    keys,
                },
                SourceMessage::CloseWindow {
                    window,
                    source,
                    seq,
                } => TupleFrame::Close {
                    window,
                    source: source as u32,
                    seq,
                },
            };
            encode_tuple_frame(&frame, buf);
        })
    }
}

/// Worker → aggregator sender over one TCP connection.
pub struct TcpPartialSender<P> {
    core: Arc<SenderCore>,
    _partial: PhantomData<fn(P)>,
}

impl<P> Clone for TcpPartialSender<P> {
    fn clone(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
            _partial: PhantomData,
        }
    }
}

impl<P> TcpPartialSender<P> {
    /// Wraps a connected stream. `epoch` anchors the wire timestamps.
    pub fn new(stream: TcpStream, epoch: Instant) -> Self {
        let _ = stream.set_nodelay(true);
        Self {
            core: Arc::new(SenderCore::new(stream, epoch)),
            _partial: PhantomData,
        }
    }
}

impl<P> PartialSender<P> for TcpPartialSender<P>
where
    P: WirePartial + Send + 'static,
{
    fn send(&self, message: PartialWindow<P>) -> Result<(), ChannelClosed> {
        self.core.send_frame(|buf, epoch| {
            let frame = PartialFrame::Partial {
                window: message.window,
                worker: message.worker as u32,
                closed_us: instant_to_us(epoch, message.closed_at),
                partial: message.partial,
            };
            encode_partial_frame(&frame, buf);
        })
    }
}

/// A transport invariant broke mid-run: an unreadable socket or a corrupt
/// frame. This runs on a *detached* reader thread, where a panic would look
/// exactly like a clean disconnect to the receiving stage (the queue sender
/// drops, `recv_batch` reports `ChannelClosed`) — in a release build the run
/// would then complete "successfully" with silently missing data. Abort the
/// whole process instead: a truncated run must never masquerade as a good
/// one.
fn die_on_transport_error(peer: &str, error: impl std::fmt::Display) -> ! {
    eprintln!("fatal transport error from {peer}: {error}");
    std::process::abort();
}

/// Spawns one reader thread per connection; all feed `queue_tx`. `decode`
/// turns one frame payload into a message (`None` for EOF) or reports the
/// frame as corrupt.
fn spawn_readers<T, F>(streams: Vec<TcpStream>, queue_tx: Sender<T>, decode: F)
where
    T: Send + 'static,
    F: Fn(&[u8]) -> Result<Option<T>, wire::WireError> + Send + Clone + 'static,
{
    for stream in streams {
        let tx = queue_tx.clone();
        let decode = decode.clone();
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        thread::spawn(move || {
            let mut reader = BufReader::with_capacity(256 * 1024, stream);
            let mut scratch: Vec<u8> = Vec::new();
            loop {
                match read_frame(&mut reader, &mut scratch) {
                    Ok(false) => break, // clean socket EOF
                    Ok(true) => match decode(&scratch) {
                        Ok(None) => break, // EOF frame
                        Ok(Some(message)) => {
                            if tx.send(message).is_err() {
                                // Receiver gone: the run is tearing down.
                                break;
                            }
                        }
                        Err(e) => die_on_transport_error(&peer, e),
                    },
                    Err(e) => die_on_transport_error(&peer, e),
                }
            }
            // Dropping `tx` disconnects the queue once every sibling reader
            // is done too.
        });
    }
    drop(queue_tx);
}

/// Source → worker receiver: merges any number of incoming connections into
/// one bounded queue the worker drains with `recv_batch`.
pub struct TcpTupleReceiver {
    queue: Receiver<SourceMessage>,
}

impl TcpTupleReceiver {
    /// Spawns the reader threads. `capacity_batches` bounds the shared
    /// queue — the transport-side realization of the engine's
    /// `queue_capacity`.
    pub fn spawn(streams: Vec<TcpStream>, epoch: Instant, capacity_batches: usize) -> Self {
        for s in &streams {
            let _ = s.set_nodelay(true);
        }
        let (tx, rx) = bounded::<SourceMessage>(capacity_batches);
        spawn_readers(streams, tx, move |payload| {
            Ok(match wire::decode_tuple_payload(payload)? {
                TupleFrame::Batch {
                    window,
                    source,
                    seq,
                    emitted_us,
                    keys,
                } => Some(SourceMessage::Batch(TupleBatch {
                    keys,
                    window: window as WindowId,
                    source: source as usize,
                    seq,
                    emitted_at: us_to_instant(epoch, emitted_us),
                })),
                TupleFrame::Close {
                    window,
                    source,
                    seq,
                } => Some(SourceMessage::CloseWindow {
                    window,
                    source: source as usize,
                    seq,
                }),
                TupleFrame::Eof => None,
            })
        });
        Self { queue: rx }
    }
}

impl TupleReceiver for TcpTupleReceiver {
    fn recv_batch(&self, out: &mut Vec<SourceMessage>) -> Result<usize, ChannelClosed> {
        self.queue
            .recv_batch(out, usize::MAX)
            .map_err(|_| ChannelClosed)
    }
}

/// Worker → aggregator receiver: merges any number of incoming connections
/// into one bounded queue the aggregator drains with `recv_batch`.
pub struct TcpPartialReceiver<P> {
    queue: Receiver<PartialWindow<P>>,
}

impl<P> TcpPartialReceiver<P>
where
    P: WirePartial + Send + 'static,
{
    /// Spawns the reader threads over `streams` with a bounded merge queue.
    pub fn spawn(streams: Vec<TcpStream>, epoch: Instant, capacity_messages: usize) -> Self {
        for s in &streams {
            let _ = s.set_nodelay(true);
        }
        let (tx, rx) = bounded::<PartialWindow<P>>(capacity_messages);
        spawn_readers(streams, tx, move |payload| {
            Ok(match wire::decode_partial_payload::<P>(payload)? {
                PartialFrame::Partial {
                    window,
                    worker,
                    closed_us,
                    partial,
                } => Some(PartialWindow {
                    window,
                    worker: worker as usize,
                    partial,
                    closed_at: us_to_instant(epoch, closed_us),
                }),
                PartialFrame::Eof => None,
            })
        });
        Self { queue: rx }
    }
}

impl<P> PartialReceiver<P> for TcpPartialReceiver<P>
where
    P: WirePartial + Send + 'static,
{
    fn recv_batch(&self, out: &mut Vec<PartialWindow<P>>) -> Result<usize, ChannelClosed> {
        self.queue
            .recv_batch(out, usize::MAX)
            .map_err(|_| ChannelClosed)
    }
}

/// Worker → source feedback sender over one TCP connection. Clonable; the
/// connection carries an EOF frame when the last clone drops, which is how
/// the source learns no further replay can be requested.
#[derive(Clone)]
pub struct TcpFeedbackSender {
    core: Arc<SenderCore>,
}

impl TcpFeedbackSender {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream, epoch: Instant) -> Self {
        let _ = stream.set_nodelay(true);
        Self {
            core: Arc::new(SenderCore::new(stream, epoch)),
        }
    }
}

impl FeedbackSender for TcpFeedbackSender {
    fn send(&self, request: ReplayRequest) -> Result<(), ChannelClosed> {
        self.core.send_frame(|buf, _epoch| {
            encode_feedback_frame(
                &FeedbackFrame::Request {
                    worker: request.worker as u32,
                    from_seq: request.from_seq,
                },
                buf,
            );
        })
    }
}

/// Worker → source feedback receiver: merges incoming connections into one
/// bounded queue the source polls between chunks and drains after emission.
pub struct TcpFeedbackReceiver {
    queue: Receiver<ReplayRequest>,
}

impl TcpFeedbackReceiver {
    /// Spawns the reader threads over `streams` with a bounded merge queue.
    pub fn spawn(streams: Vec<TcpStream>, capacity_messages: usize) -> Self {
        for s in &streams {
            let _ = s.set_nodelay(true);
        }
        let (tx, rx) = bounded::<ReplayRequest>(capacity_messages);
        spawn_readers(streams, tx, move |payload| {
            Ok(match wire::decode_feedback_payload(payload)? {
                FeedbackFrame::Request { worker, from_seq } => Some(ReplayRequest {
                    worker: worker as usize,
                    from_seq,
                }),
                FeedbackFrame::Eof => None,
            })
        });
        Self { queue: rx }
    }
}

impl FeedbackReceiver for TcpFeedbackReceiver {
    fn try_recv(&self) -> Result<Option<ReplayRequest>, ChannelClosed> {
        match Receiver::try_recv(&self.queue) {
            Ok(request) => Ok(Some(request)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ChannelClosed),
        }
    }

    fn recv(&self) -> Result<ReplayRequest, ChannelClosed> {
        Receiver::recv(&self.queue).map_err(|_| ChannelClosed)
    }
}

/// Binds an ephemeral loopback listener and returns a connected
/// client/server stream pair over it.
fn loopback_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
    let addr = listener.local_addr().expect("listener address");
    let client = TcpStream::connect(addr).expect("connect loopback");
    let (server, _) = listener.accept().expect("accept loopback");
    (client, server)
}

/// The TCP transport backend: every engine channel becomes a loopback TCP
/// connection carrying wire frames. Drop-in for [`slb_engine::InProc`] via
/// [`Topology::run_windowed_on`](slb_engine::Topology::run_windowed_on) —
/// the cross-backend differential suite proves the merged windowed counts
/// are bit-identical.
///
/// This is also the building block of the multi-process deployment: the
/// `slb-node` roles construct the same senders/receivers from accepted and
/// dialed sockets instead of loopback pairs.
pub struct TcpTransport {
    epoch: Instant,
}

impl TcpTransport {
    /// A transport whose epoch is "now" — the usual choice just before a
    /// run starts.
    pub fn loopback() -> Self {
        Self::with_epoch(Instant::now())
    }

    /// A transport anchored at an explicit epoch (multi-process runs align
    /// all nodes on one orchestrator-chosen epoch).
    pub fn with_epoch(epoch: Instant) -> Self {
        Self { epoch }
    }

    /// The epoch wire timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::loopback()
    }
}

impl<P> Transport<P> for TcpTransport
where
    P: WirePartial + Send + 'static,
{
    type TupleTx = TcpTupleSender;
    type TupleRx = TcpTupleReceiver;
    type PartialTx = TcpPartialSender<P>;
    type PartialRx = TcpPartialReceiver<P>;
    type FeedbackTx = TcpFeedbackSender;
    type FeedbackRx = TcpFeedbackReceiver;

    fn tuple_channels(
        &self,
        workers: usize,
        capacity_batches: usize,
    ) -> (Vec<Self::TupleTx>, Vec<Self::TupleRx>) {
        (0..workers)
            .map(|_| {
                let (client, server) = loopback_pair();
                (
                    TcpTupleSender::new(client, self.epoch),
                    TcpTupleReceiver::spawn(vec![server], self.epoch, capacity_batches),
                )
            })
            .unzip()
    }

    fn partial_channels(
        &self,
        aggregators: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::PartialTx>, Vec<Self::PartialRx>) {
        (0..aggregators)
            .map(|_| {
                let (client, server) = loopback_pair();
                (
                    TcpPartialSender::new(client, self.epoch),
                    TcpPartialReceiver::spawn(vec![server], self.epoch, capacity_messages),
                )
            })
            .unzip()
    }

    fn feedback_channels(
        &self,
        sources: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::FeedbackTx>, Vec<Self::FeedbackRx>) {
        (0..sources)
            .map(|_| {
                let (client, server) = loopback_pair();
                (
                    TcpFeedbackSender::new(client, self.epoch),
                    TcpFeedbackReceiver::spawn(vec![server], capacity_messages),
                )
            })
            .unzip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tuple_channel_delivers_batches_punctuation_and_eof() {
        let transport = TcpTransport::loopback();
        let (txs, rxs) = Transport::<u64>::tuple_channels(&transport, 1, 4);
        let tx = txs.into_iter().next().unwrap();
        let rx = rxs.into_iter().next().unwrap();
        let epoch = transport.epoch();
        tx.send(SourceMessage::Batch(TupleBatch {
            keys: vec![10, 20, 30],
            window: 2,
            source: 1,
            seq: 7,
            emitted_at: epoch + Duration::from_micros(55),
        }))
        .unwrap();
        tx.send(SourceMessage::CloseWindow {
            window: 2,
            source: 1,
            seq: 8,
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<SourceMessage> = Vec::new();
        while rx.recv_batch(&mut got).is_ok() {}
        assert_eq!(got.len(), 2);
        match &got[0] {
            SourceMessage::Batch(batch) => {
                assert_eq!(batch.keys, vec![10, 20, 30]);
                assert_eq!(batch.window, 2);
                assert_eq!(batch.source, 1);
                assert_eq!(batch.seq, 7);
                assert_eq!(instant_to_us(epoch, batch.emitted_at), 55);
            }
            _ => panic!("expected batch first"),
        }
        assert!(matches!(
            got[1],
            SourceMessage::CloseWindow {
                window: 2,
                source: 1,
                seq: 8
            }
        ));
    }

    #[test]
    fn partial_channel_round_trips_count_partials() {
        let transport = TcpTransport::loopback();
        let (txs, rxs) = Transport::<HashMap<u64, u64>>::partial_channels(&transport, 1, 4);
        let tx = txs.into_iter().next().unwrap();
        let rx = rxs.into_iter().next().unwrap();
        let mut counts = HashMap::new();
        counts.insert(5u64, 3u64);
        counts.insert(9, 1);
        tx.send(PartialWindow {
            window: 4,
            worker: 3,
            partial: counts.clone(),
            closed_at: Instant::now(),
        })
        .unwrap();
        drop(tx);
        let mut got = Vec::new();
        while rx.recv_batch(&mut got).is_ok() {}
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].window, 4);
        assert_eq!(got[0].worker, 3);
        assert_eq!(got[0].partial, counts);
    }

    #[test]
    fn feedback_channel_polls_blocks_and_disconnects() {
        let transport = TcpTransport::loopback();
        let (txs, rxs) = Transport::<u64>::feedback_channels(&transport, 1, 4);
        let tx = txs.into_iter().next().unwrap();
        let rx = rxs.into_iter().next().unwrap();
        assert_eq!(rx.try_recv(), Ok(None), "empty but connected polls None");
        let request = ReplayRequest {
            worker: 2,
            from_seq: 31,
        };
        tx.send(request).unwrap();
        assert_eq!(rx.recv(), Ok(request));
        drop(tx);
        // EOF propagates: the queue disconnects once the reader drains.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match rx.try_recv() {
                Err(ChannelClosed) => break,
                Ok(None) if Instant::now() < deadline => thread::sleep(Duration::from_millis(1)),
                other => panic!("unexpected poll result before disconnect: {other:?}"),
            }
        }
    }

    #[test]
    fn cloned_senders_share_one_connection_and_eof_fires_on_last_drop() {
        let transport = TcpTransport::loopback();
        let (txs, rxs) = Transport::<u64>::tuple_channels(&transport, 1, 8);
        let tx = txs.into_iter().next().unwrap();
        let rx = rxs.into_iter().next().unwrap();
        let clones: Vec<TcpTupleSender> = (0..4).map(|_| tx.clone()).collect();
        drop(tx);
        for (i, clone) in clones.iter().enumerate() {
            clone
                .send(SourceMessage::CloseWindow {
                    window: i as u64,
                    source: 0,
                    seq: i as u64,
                })
                .unwrap();
        }
        drop(clones);
        let mut got = Vec::new();
        while rx.recv_batch(&mut got).is_ok() {}
        assert_eq!(got.len(), 4, "EOF must come only after every message");
    }

    #[test]
    fn timestamp_rebasing_is_inverse_up_to_saturation() {
        let epoch = Instant::now();
        for us in [0u64, 1, 999_999, 12_345_678] {
            assert_eq!(instant_to_us(epoch, us_to_instant(epoch, us)), us);
        }
        // Pre-epoch instants clamp to zero rather than panicking.
        let earlier = epoch - Duration::from_secs(1);
        assert_eq!(instant_to_us(epoch, earlier), 0);
    }
}
