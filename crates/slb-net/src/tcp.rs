//! TCP channels implementing the engine's [`Transport`] contract.
//!
//! Each engine channel becomes one or more TCP connections carrying the wire
//! frames of [`crate::wire`]:
//!
//! * a **sender handle** serializes messages under a mutex and writes one
//!   complete frame per message straight to the socket (the engine already
//!   batches tuples, so a frame is ≥ one transport batch — no extra
//!   buffering layer is needed, and a blocking `write` propagates TCP
//!   back-pressure to the sending stage). Handles are cloned per sending
//!   stage instance; when the **last** clone drops, an [`tag::EOF`] frame is
//!   written and the write side shuts down.
//! * a **receiver handle** owns one reader thread per incoming connection;
//!   readers decode frames and push messages into one shared *bounded*
//!   crossbeam queue sized by the engine's `queue_capacity`-derived batch
//!   budget ([`slb_engine::capacity_in_batches`]). A full queue blocks the
//!   readers, the kernel's TCP window fills, and the remote senders block —
//!   the same back-pressure chain as the in-process backend, with the
//!   kernel's socket buffers as the only extra slack.
//!
//! FIFO per sender holds: each sending stage writes its frames in order to
//! one socket, TCP preserves byte order, and the reader enqueues in frame
//! order. That is exactly the ordering the window-punctuation protocol
//! needs.
//!
//! `Instant`s never cross a socket. A [`TcpTransport`] carries the run's
//! *epoch*; timestamps travel as µs-since-epoch and are rebased on arrival.
//! In-process (the differential and perf suites) both endpoints share one
//! epoch, so latency metrics are exact up to µs quantization; across
//! processes `slb-node` aligns epochs through the orchestrator's wall-clock
//! handshake, so metrics additionally absorb (same-machine) clock offset.
//! Merged *counts* — the correctness obligation — never depend on
//! timestamps.
//!
//! A reader thread that receives a *malformed* frame (or whose read fails
//! mid-stream) does not die silently and does not abort the process: it
//! pushes a [`TransportError`] into the merge queue and stops reading that
//! connection. The receiving stage sees the error as a distinct
//! `Err(RecvError::Transport(_))` from `recv_batch` — clearly told apart
//! from the clean-EOF `RecvError::Closed` — counts it in its report's
//! `transport_errors`, and keeps draining the queue's surviving
//! connections. This is what a SIGKILLed peer looks like from the other
//! end of its sockets: usually a clean FIN (kernel closes the dead
//! process's sockets), occasionally a frame torn mid-write; either way the
//! run continues and the recovery protocol (durable checkpoints + replay,
//! see `docs/FAULTS.md`) restores exactness, with the error on the record
//! instead of a healthy-looking truncated run. The codec itself stays
//! total (errors, not panics) — see the `wire_props` suite.

use std::io::{BufReader, Write};
use std::marker::PhantomData;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender, TryRecvError};
use slb_core::WirePartial;
use slb_engine::transport::{
    ChannelClosed, FeedbackReceiver, FeedbackSender, PartialReceiver, PartialSender, PartialWindow,
    RecvError, ReplayRequest, SourceMessage, Transport, TransportError, TupleBatch, TupleReceiver,
    TupleSender,
};
use slb_engine::WindowId;

use crate::wire::{
    self, encode_feedback_frame, encode_partial_frame, encode_tuple_frame, read_frame, tag,
    FeedbackFrame, PartialFrame, TupleFrame,
};

/// Converts an [`Instant`] to wire form: µs since the transport epoch.
pub fn instant_to_us(epoch: Instant, t: Instant) -> u64 {
    t.saturating_duration_since(epoch).as_micros() as u64
}

/// Rebases a wire timestamp onto the local clock: epoch + µs.
pub fn us_to_instant(epoch: Instant, us: u64) -> Instant {
    epoch
        .checked_add(Duration::from_micros(us))
        .unwrap_or(epoch)
}

/// Socket + reusable encode buffer, locked per send.
struct FramedWriter {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Shared core of a sender handle. On last-drop it writes an EOF frame and
/// shuts the write side down, which is what terminates the remote reader.
struct SenderCore {
    writer: Mutex<FramedWriter>,
    epoch: Instant,
}

impl SenderCore {
    fn new(stream: TcpStream, epoch: Instant) -> Self {
        Self {
            writer: Mutex::new(FramedWriter {
                stream,
                buf: Vec::with_capacity(4 * 1024),
            }),
            epoch,
        }
    }

    /// Encodes with `encode` into the shared buffer and writes one frame.
    fn send_frame(&self, encode: impl FnOnce(&mut Vec<u8>, Instant)) -> Result<(), ChannelClosed> {
        let mut writer = self.writer.lock().expect("sender lock poisoned");
        let FramedWriter { stream, buf } = &mut *writer;
        buf.clear();
        encode(buf, self.epoch);
        stream.write_all(buf).map_err(|_| ChannelClosed)
    }
}

impl Drop for SenderCore {
    fn drop(&mut self) {
        // Best effort: the peer may already be gone.
        if let Ok(mut writer) = self.writer.lock() {
            let FramedWriter { stream, buf } = &mut *writer;
            buf.clear();
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.push(tag::EOF);
            let _ = stream.write_all(buf);
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }
    }
}

/// Source → worker sender over one TCP connection. Clonable; the connection
/// carries an EOF frame when the last clone drops.
#[derive(Clone)]
pub struct TcpTupleSender {
    core: Arc<SenderCore>,
}

impl TcpTupleSender {
    /// Wraps a connected stream. `epoch` anchors the wire timestamps.
    pub fn new(stream: TcpStream, epoch: Instant) -> Self {
        let _ = stream.set_nodelay(true);
        Self {
            core: Arc::new(SenderCore::new(stream, epoch)),
        }
    }
}

impl TupleSender for TcpTupleSender {
    fn send(&self, message: SourceMessage) -> Result<(), ChannelClosed> {
        self.core.send_frame(|buf, epoch| {
            let frame = match message {
                SourceMessage::Batch(TupleBatch {
                    keys,
                    window,
                    source,
                    seq,
                    emitted_at,
                }) => TupleFrame::Batch {
                    window,
                    source: source as u32,
                    seq,
                    emitted_us: instant_to_us(epoch, emitted_at),
                    keys,
                },
                SourceMessage::CloseWindow {
                    window,
                    source,
                    seq,
                } => TupleFrame::Close {
                    window,
                    source: source as u32,
                    seq,
                },
            };
            encode_tuple_frame(&frame, buf);
        })
    }
}

/// A source's sender to one worker that survives that worker's death and
/// accepts a replacement connection mid-run.
///
/// While the slot holds a live connection, sends go straight through; the
/// first failed write *detaches* the slot (dropping the dead connection,
/// which is harmless — its peer is gone) and subsequent sends are silently
/// dropped rather than reported as `ChannelClosed`. That is deliberate: in
/// the fault-tolerant deployment a dead worker is not the end of the run,
/// and exactness does not depend on these lost frames — the respawned
/// worker's `Rejoin` carries its durable cursors and the source replays
/// everything from there (`docs/FAULTS.md`). [`reattach`](Self::reattach)
/// installs the replacement connection; the EOF-on-last-drop contract then
/// applies to the new connection.
#[derive(Clone)]
pub struct ReattachableTupleSender {
    slot: Arc<Mutex<Option<TcpTupleSender>>>,
    epoch: Instant,
}

impl ReattachableTupleSender {
    /// Wraps an initially connected stream.
    pub fn new(stream: TcpStream, epoch: Instant) -> Self {
        Self {
            slot: Arc::new(Mutex::new(Some(TcpTupleSender::new(stream, epoch)))),
            epoch,
        }
    }

    /// Replaces the (dead or live) connection with a fresh one. Subsequent
    /// sends go to the new peer.
    pub fn reattach(&self, stream: TcpStream) {
        let sender = TcpTupleSender::new(stream, self.epoch);
        *self.slot.lock().expect("sender slot poisoned") = Some(sender);
    }

    /// Whether the slot currently holds a live connection (false after a
    /// failed send until `reattach`).
    pub fn is_attached(&self) -> bool {
        self.slot.lock().expect("sender slot poisoned").is_some()
    }
}

impl TupleSender for ReattachableTupleSender {
    fn send(&self, message: SourceMessage) -> Result<(), ChannelClosed> {
        let mut slot = self.slot.lock().expect("sender slot poisoned");
        if let Some(sender) = slot.as_ref() {
            if sender.send(message).is_err() {
                // Peer died mid-run: drop the connection and keep going.
                // Replay after Rejoin re-covers anything lost here.
                *slot = None;
            }
        }
        Ok(())
    }
}

/// Worker → aggregator sender over one TCP connection.
pub struct TcpPartialSender<P> {
    core: Arc<SenderCore>,
    _partial: PhantomData<fn(P)>,
}

impl<P> Clone for TcpPartialSender<P> {
    fn clone(&self) -> Self {
        Self {
            core: Arc::clone(&self.core),
            _partial: PhantomData,
        }
    }
}

impl<P> TcpPartialSender<P> {
    /// Wraps a connected stream. `epoch` anchors the wire timestamps.
    pub fn new(stream: TcpStream, epoch: Instant) -> Self {
        let _ = stream.set_nodelay(true);
        Self {
            core: Arc::new(SenderCore::new(stream, epoch)),
            _partial: PhantomData,
        }
    }
}

impl<P> PartialSender<P> for TcpPartialSender<P>
where
    P: WirePartial + Send + 'static,
{
    fn send(&self, message: PartialWindow<P>) -> Result<(), ChannelClosed> {
        self.core.send_frame(|buf, epoch| {
            let frame = PartialFrame::Partial {
                window: message.window,
                worker: message.worker as u32,
                closed_us: instant_to_us(epoch, message.closed_at),
                partial: message.partial,
            };
            encode_partial_frame(&frame, buf);
        })
    }
}

/// Spawns one reader thread per connection; all feed `queue_tx`. `decode`
/// turns one frame payload into a message (`None` for EOF) or reports the
/// frame as corrupt.
///
/// A reader that hits a malformed frame or a failed read pushes the error
/// *into the queue* as a [`TransportError`] and stops reading that
/// connection — the receiving stage can then tell a crashed peer
/// (`RecvError::Transport`) from a clean end of stream (`RecvError::Closed`)
/// and survive the former. The erroring connection contributes nothing
/// further; its sibling connections keep the queue alive.
fn spawn_readers<T, F>(
    streams: Vec<TcpStream>,
    queue_tx: Sender<Result<T, TransportError>>,
    decode: F,
) where
    T: Send + 'static,
    F: Fn(&[u8]) -> Result<Option<T>, wire::WireError> + Send + Clone + 'static,
{
    for stream in streams {
        let tx = queue_tx.clone();
        let decode = decode.clone();
        spawn_reader(stream, tx, decode);
    }
    drop(queue_tx);
}

/// One reader thread for one connection, feeding a shared merge queue.
fn spawn_reader<T, F>(stream: TcpStream, tx: Sender<Result<T, TransportError>>, decode: F)
where
    T: Send + 'static,
    F: Fn(&[u8]) -> Result<Option<T>, wire::WireError> + Send + 'static,
{
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    thread::spawn(move || {
        let mut reader = BufReader::with_capacity(256 * 1024, stream);
        let mut scratch: Vec<u8> = Vec::new();
        loop {
            match read_frame(&mut reader, &mut scratch) {
                Ok(false) => break, // clean socket EOF
                Ok(true) => match decode(&scratch) {
                    Ok(None) => break, // EOF frame
                    Ok(Some(message)) => {
                        if tx.send(Ok(message)).is_err() {
                            // Receiver gone: the run is tearing down.
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(TransportError {
                            peer,
                            detail: e.to_string(),
                        }));
                        break;
                    }
                },
                Err(e) => {
                    let _ = tx.send(Err(TransportError {
                        peer,
                        detail: e.to_string(),
                    }));
                    break;
                }
            }
        }
        // Dropping `tx` disconnects the queue once every sibling reader
        // is done too.
    });
}

/// The shared merge side of a TCP receiver: reader threads feed it
/// `Ok(message)` per decoded frame and at most one `Err(TransportError)`
/// each; `recv_batch` surfaces data eagerly and errors on the calls where
/// no data arrived with them.
struct MergedQueue<T> {
    queue: Receiver<Result<T, TransportError>>,
    /// Errors drained alongside data, held for the next call so the data
    /// they arrived with is never delayed behind the error report.
    pending_errors: Mutex<std::collections::VecDeque<TransportError>>,
    /// Reused drain buffer, so a batch still moves under one queue lock.
    scratch: Mutex<Vec<Result<T, TransportError>>>,
}

impl<T> MergedQueue<T> {
    fn new(queue: Receiver<Result<T, TransportError>>) -> Self {
        Self {
            queue,
            pending_errors: Mutex::new(std::collections::VecDeque::new()),
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// The `recv_batch` contract of the engine's receiver traits:
    /// appends every available message and returns how many;
    /// `Err(RecvError::Transport)` reports a dead connection on a call
    /// with nothing else to deliver (survivable — keep calling);
    /// `Err(RecvError::Closed)` is the terminal clean end of stream.
    fn recv_batch(&self, out: &mut Vec<T>) -> Result<usize, RecvError> {
        if let Some(error) = self
            .pending_errors
            .lock()
            .expect("receiver lock poisoned")
            .pop_front()
        {
            return Err(RecvError::Transport(error));
        }
        let mut scratch = self.scratch.lock().expect("receiver lock poisoned");
        if self.queue.recv_batch(&mut scratch, usize::MAX).is_err() {
            return Err(RecvError::Closed);
        }
        let mut appended = 0usize;
        let mut pending = self.pending_errors.lock().expect("receiver lock poisoned");
        for item in scratch.drain(..) {
            match item {
                Ok(message) => {
                    out.push(message);
                    appended += 1;
                }
                Err(error) => pending.push_back(error),
            }
        }
        if appended == 0 {
            if let Some(error) = pending.pop_front() {
                return Err(RecvError::Transport(error));
            }
        }
        Ok(appended)
    }
}

/// Decodes one tuple-channel frame payload (shared by `spawn` and the
/// attachable path).
fn decode_tuple_message(
    payload: &[u8],
    epoch: Instant,
) -> Result<Option<SourceMessage>, wire::WireError> {
    Ok(match wire::decode_tuple_payload(payload)? {
        TupleFrame::Batch {
            window,
            source,
            seq,
            emitted_us,
            keys,
        } => Some(SourceMessage::Batch(TupleBatch {
            keys,
            window: window as WindowId,
            source: source as usize,
            seq,
            emitted_at: us_to_instant(epoch, emitted_us),
        })),
        TupleFrame::Close {
            window,
            source,
            seq,
        } => Some(SourceMessage::CloseWindow {
            window,
            source: source as usize,
            seq,
        }),
        TupleFrame::Eof => None,
    })
}

/// Source → worker receiver: merges any number of incoming connections into
/// one bounded queue the worker drains with `recv_batch`.
pub struct TcpTupleReceiver {
    queue: MergedQueue<SourceMessage>,
}

impl TcpTupleReceiver {
    /// Spawns the reader threads. `capacity_batches` bounds the shared
    /// queue — the transport-side realization of the engine's
    /// `queue_capacity`.
    pub fn spawn(streams: Vec<TcpStream>, epoch: Instant, capacity_batches: usize) -> Self {
        for s in &streams {
            let _ = s.set_nodelay(true);
        }
        let (tx, rx) = bounded::<Result<SourceMessage, TransportError>>(capacity_batches);
        spawn_readers(streams, tx, move |payload| {
            decode_tuple_message(payload, epoch)
        });
        Self {
            queue: MergedQueue::new(rx),
        }
    }
}

impl TupleReceiver for TcpTupleReceiver {
    fn recv_batch(&self, out: &mut Vec<SourceMessage>) -> Result<usize, RecvError> {
        self.queue.recv_batch(out)
    }
}

/// Decodes one partial-channel frame payload (shared by `spawn` and
/// [`PartialAttach`]).
fn decode_partial_message<P: WirePartial>(
    payload: &[u8],
    epoch: Instant,
) -> Result<Option<PartialWindow<P>>, wire::WireError> {
    Ok(match wire::decode_partial_payload::<P>(payload)? {
        PartialFrame::Partial {
            window,
            worker,
            closed_us,
            partial,
        } => Some(PartialWindow {
            window,
            worker: worker as usize,
            partial,
            closed_at: us_to_instant(epoch, closed_us),
        }),
        PartialFrame::Eof => None,
    })
}

/// Worker → aggregator receiver: merges any number of incoming connections
/// into one bounded queue the aggregator drains with `recv_batch`.
pub struct TcpPartialReceiver<P> {
    queue: MergedQueue<PartialWindow<P>>,
}

impl<P> TcpPartialReceiver<P>
where
    P: WirePartial + Send + 'static,
{
    /// Spawns the reader threads over `streams` with a bounded merge queue.
    /// The queue disconnects (clean `Closed`) once every connection ends.
    pub fn spawn(streams: Vec<TcpStream>, epoch: Instant, capacity_messages: usize) -> Self {
        for s in &streams {
            let _ = s.set_nodelay(true);
        }
        let (tx, rx) = bounded::<Result<PartialWindow<P>, TransportError>>(capacity_messages);
        spawn_readers(streams, tx, move |payload| {
            decode_partial_message::<P>(payload, epoch)
        });
        Self {
            queue: MergedQueue::new(rx),
        }
    }

    /// Like [`spawn`](Self::spawn), but also returns a [`PartialAttach`]
    /// handle that can feed *additional* connections into the same merge
    /// queue later — how an aggregator re-admits a respawned worker
    /// mid-run. The queue only disconnects after every attached connection
    /// ends **and** the attach handle has been dropped.
    pub fn spawn_attachable(
        streams: Vec<TcpStream>,
        epoch: Instant,
        capacity_messages: usize,
    ) -> (Self, PartialAttach<P>) {
        for s in &streams {
            let _ = s.set_nodelay(true);
        }
        let (tx, rx) = bounded::<Result<PartialWindow<P>, TransportError>>(capacity_messages);
        let attach = PartialAttach {
            tx: tx.clone(),
            epoch,
            _partial: PhantomData,
        };
        spawn_readers(streams, tx, move |payload| {
            decode_partial_message::<P>(payload, epoch)
        });
        (
            Self {
                queue: MergedQueue::new(rx),
            },
            attach,
        )
    }
}

/// Feeds additional worker connections into an existing
/// [`TcpPartialReceiver`]'s merge queue (see
/// [`TcpPartialReceiver::spawn_attachable`]). Keeping the handle alive
/// keeps the queue connected; drop it once no further attachment can occur
/// so the receiver's end-of-stream can fire.
pub struct PartialAttach<P> {
    tx: Sender<Result<PartialWindow<P>, TransportError>>,
    epoch: Instant,
    _partial: PhantomData<fn(P)>,
}

impl<P> PartialAttach<P>
where
    P: WirePartial + Send + 'static,
{
    /// Spawns one more reader thread over `stream`, feeding the shared
    /// merge queue.
    pub fn attach(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let epoch = self.epoch;
        spawn_reader(stream, self.tx.clone(), move |payload| {
            decode_partial_message::<P>(payload, epoch)
        });
    }
}

impl<P> PartialReceiver<P> for TcpPartialReceiver<P>
where
    P: WirePartial + Send + 'static,
{
    fn recv_batch(&self, out: &mut Vec<PartialWindow<P>>) -> Result<usize, RecvError> {
        self.queue.recv_batch(out)
    }
}

/// Worker → source feedback sender over one TCP connection. Clonable; the
/// connection carries an EOF frame when the last clone drops, which is how
/// the source learns no further replay can be requested.
#[derive(Clone)]
pub struct TcpFeedbackSender {
    core: Arc<SenderCore>,
}

impl TcpFeedbackSender {
    /// Wraps a connected stream.
    pub fn new(stream: TcpStream, epoch: Instant) -> Self {
        let _ = stream.set_nodelay(true);
        Self {
            core: Arc::new(SenderCore::new(stream, epoch)),
        }
    }
}

impl FeedbackSender for TcpFeedbackSender {
    fn send(&self, request: ReplayRequest) -> Result<(), ChannelClosed> {
        self.core.send_frame(|buf, _epoch| {
            encode_feedback_frame(
                &FeedbackFrame::Request {
                    worker: request.worker as u32,
                    from_seq: request.from_seq,
                },
                buf,
            );
        })
    }
}

/// Worker → source feedback receiver: merges incoming connections into one
/// bounded queue the source polls between chunks and drains after emission.
///
/// The feedback contract has no transport-error arm ([`FeedbackReceiver`]
/// only distinguishes "request" from "no more requests"), so a connection
/// that dies uncleanly is treated like its clean end: the source simply
/// stops hearing from that worker, which is safe — feedback is purely an
/// optimization trigger, never a correctness obligation.
pub struct TcpFeedbackReceiver {
    queue: Receiver<Result<ReplayRequest, TransportError>>,
}

impl TcpFeedbackReceiver {
    /// Spawns the reader threads over `streams` with a bounded merge queue.
    pub fn spawn(streams: Vec<TcpStream>, capacity_messages: usize) -> Self {
        for s in &streams {
            let _ = s.set_nodelay(true);
        }
        let (tx, rx) = bounded::<Result<ReplayRequest, TransportError>>(capacity_messages);
        spawn_readers(streams, tx, move |payload| {
            Ok(match wire::decode_feedback_payload(payload)? {
                FeedbackFrame::Request { worker, from_seq } => Some(ReplayRequest {
                    worker: worker as usize,
                    from_seq,
                }),
                FeedbackFrame::Eof => None,
            })
        });
        Self { queue: rx }
    }
}

impl FeedbackReceiver for TcpFeedbackReceiver {
    fn try_recv(&self) -> Result<Option<ReplayRequest>, ChannelClosed> {
        loop {
            match Receiver::try_recv(&self.queue) {
                Ok(Ok(request)) => return Ok(Some(request)),
                Ok(Err(_)) => continue, // dead connection: same as its EOF
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => return Err(ChannelClosed),
            }
        }
    }

    fn recv(&self) -> Result<ReplayRequest, ChannelClosed> {
        loop {
            match Receiver::recv(&self.queue) {
                Ok(Ok(request)) => return Ok(request),
                Ok(Err(_)) => continue, // dead connection: same as its EOF
                Err(_) => return Err(ChannelClosed),
            }
        }
    }
}

/// Dials `addr` with bounded retry: exponential backoff from `base_delay`
/// (doubling per attempt, capped at one second) plus a ±25% jitter so a
/// herd of peers re-dialing a respawned node does not arrive in lockstep.
/// Returns the last connect error once `attempts` are exhausted.
pub fn connect_with_retry(
    addr: &str,
    attempts: u32,
    base_delay: Duration,
) -> std::io::Result<TcpStream> {
    assert!(attempts > 0, "need at least one connect attempt");
    let mut delay = base_delay;
    // Cheap SplitMix64 over the clock: only decorrelates peers, no
    // statistical burden.
    let mut jitter_state = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15);
    let mut last_err = None;
    for attempt in 0..attempts {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
        if attempt + 1 == attempts {
            break;
        }
        jitter_state = jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Sleep delay ± 25%.
        let base = delay.as_micros() as u64;
        let spread = base / 2;
        let jittered = base - base / 4 + if spread > 0 { z % spread } else { 0 };
        thread::sleep(Duration::from_micros(jittered));
        delay = (delay * 2).min(Duration::from_secs(1));
    }
    Err(last_err.expect("at least one attempt recorded an error"))
}

/// Binds an ephemeral loopback listener and returns a connected
/// client/server stream pair over it.
fn loopback_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback listener");
    let addr = listener.local_addr().expect("listener address");
    let client = TcpStream::connect(addr).expect("connect loopback");
    let (server, _) = listener.accept().expect("accept loopback");
    (client, server)
}

/// The TCP transport backend: every engine channel becomes a loopback TCP
/// connection carrying wire frames. Drop-in for [`slb_engine::InProc`] via
/// [`Topology::run_windowed_on`](slb_engine::Topology::run_windowed_on) —
/// the cross-backend differential suite proves the merged windowed counts
/// are bit-identical.
///
/// This is also the building block of the multi-process deployment: the
/// `slb-node` roles construct the same senders/receivers from accepted and
/// dialed sockets instead of loopback pairs.
pub struct TcpTransport {
    epoch: Instant,
}

impl TcpTransport {
    /// A transport whose epoch is "now" — the usual choice just before a
    /// run starts.
    pub fn loopback() -> Self {
        Self::with_epoch(Instant::now())
    }

    /// A transport anchored at an explicit epoch (multi-process runs align
    /// all nodes on one orchestrator-chosen epoch).
    pub fn with_epoch(epoch: Instant) -> Self {
        Self { epoch }
    }

    /// The epoch wire timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::loopback()
    }
}

impl<P> Transport<P> for TcpTransport
where
    P: WirePartial + Send + 'static,
{
    type TupleTx = TcpTupleSender;
    type TupleRx = TcpTupleReceiver;
    type PartialTx = TcpPartialSender<P>;
    type PartialRx = TcpPartialReceiver<P>;
    type FeedbackTx = TcpFeedbackSender;
    type FeedbackRx = TcpFeedbackReceiver;

    fn tuple_channels(
        &self,
        workers: usize,
        capacity_batches: usize,
    ) -> (Vec<Self::TupleTx>, Vec<Self::TupleRx>) {
        (0..workers)
            .map(|_| {
                let (client, server) = loopback_pair();
                (
                    TcpTupleSender::new(client, self.epoch),
                    TcpTupleReceiver::spawn(vec![server], self.epoch, capacity_batches),
                )
            })
            .unzip()
    }

    fn partial_channels(
        &self,
        aggregators: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::PartialTx>, Vec<Self::PartialRx>) {
        (0..aggregators)
            .map(|_| {
                let (client, server) = loopback_pair();
                (
                    TcpPartialSender::new(client, self.epoch),
                    TcpPartialReceiver::spawn(vec![server], self.epoch, capacity_messages),
                )
            })
            .unzip()
    }

    fn feedback_channels(
        &self,
        sources: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::FeedbackTx>, Vec<Self::FeedbackRx>) {
        (0..sources)
            .map(|_| {
                let (client, server) = loopback_pair();
                (
                    TcpFeedbackSender::new(client, self.epoch),
                    TcpFeedbackReceiver::spawn(vec![server], capacity_messages),
                )
            })
            .unzip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tuple_channel_delivers_batches_punctuation_and_eof() {
        let transport = TcpTransport::loopback();
        let (txs, rxs) = Transport::<u64>::tuple_channels(&transport, 1, 4);
        let tx = txs.into_iter().next().unwrap();
        let rx = rxs.into_iter().next().unwrap();
        let epoch = transport.epoch();
        tx.send(SourceMessage::Batch(TupleBatch {
            keys: vec![10, 20, 30],
            window: 2,
            source: 1,
            seq: 7,
            emitted_at: epoch + Duration::from_micros(55),
        }))
        .unwrap();
        tx.send(SourceMessage::CloseWindow {
            window: 2,
            source: 1,
            seq: 8,
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<SourceMessage> = Vec::new();
        while rx.recv_batch(&mut got).is_ok() {}
        assert_eq!(got.len(), 2);
        match &got[0] {
            SourceMessage::Batch(batch) => {
                assert_eq!(batch.keys, vec![10, 20, 30]);
                assert_eq!(batch.window, 2);
                assert_eq!(batch.source, 1);
                assert_eq!(batch.seq, 7);
                assert_eq!(instant_to_us(epoch, batch.emitted_at), 55);
            }
            _ => panic!("expected batch first"),
        }
        assert!(matches!(
            got[1],
            SourceMessage::CloseWindow {
                window: 2,
                source: 1,
                seq: 8
            }
        ));
    }

    #[test]
    fn partial_channel_round_trips_count_partials() {
        let transport = TcpTransport::loopback();
        let (txs, rxs) = Transport::<HashMap<u64, u64>>::partial_channels(&transport, 1, 4);
        let tx = txs.into_iter().next().unwrap();
        let rx = rxs.into_iter().next().unwrap();
        let mut counts = HashMap::new();
        counts.insert(5u64, 3u64);
        counts.insert(9, 1);
        tx.send(PartialWindow {
            window: 4,
            worker: 3,
            partial: counts.clone(),
            closed_at: Instant::now(),
        })
        .unwrap();
        drop(tx);
        let mut got = Vec::new();
        while rx.recv_batch(&mut got).is_ok() {}
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].window, 4);
        assert_eq!(got[0].worker, 3);
        assert_eq!(got[0].partial, counts);
    }

    #[test]
    fn feedback_channel_polls_blocks_and_disconnects() {
        let transport = TcpTransport::loopback();
        let (txs, rxs) = Transport::<u64>::feedback_channels(&transport, 1, 4);
        let tx = txs.into_iter().next().unwrap();
        let rx = rxs.into_iter().next().unwrap();
        assert_eq!(rx.try_recv(), Ok(None), "empty but connected polls None");
        let request = ReplayRequest {
            worker: 2,
            from_seq: 31,
        };
        tx.send(request).unwrap();
        assert_eq!(rx.recv(), Ok(request));
        drop(tx);
        // EOF propagates: the queue disconnects once the reader drains.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match rx.try_recv() {
                Err(ChannelClosed) => break,
                Ok(None) if Instant::now() < deadline => thread::sleep(Duration::from_millis(1)),
                other => panic!("unexpected poll result before disconnect: {other:?}"),
            }
        }
    }

    #[test]
    fn cloned_senders_share_one_connection_and_eof_fires_on_last_drop() {
        let transport = TcpTransport::loopback();
        let (txs, rxs) = Transport::<u64>::tuple_channels(&transport, 1, 8);
        let tx = txs.into_iter().next().unwrap();
        let rx = rxs.into_iter().next().unwrap();
        let clones: Vec<TcpTupleSender> = (0..4).map(|_| tx.clone()).collect();
        drop(tx);
        for (i, clone) in clones.iter().enumerate() {
            clone
                .send(SourceMessage::CloseWindow {
                    window: i as u64,
                    source: 0,
                    seq: i as u64,
                })
                .unwrap();
        }
        drop(clones);
        let mut got = Vec::new();
        while rx.recv_batch(&mut got).is_ok() {}
        assert_eq!(got.len(), 4, "EOF must come only after every message");
    }

    #[test]
    fn corrupt_frame_surfaces_as_transport_error_and_spares_siblings() {
        let epoch = Instant::now();
        let (good_client, good_server) = loopback_pair();
        let (bad_client, bad_server) = loopback_pair();
        let rx = TcpTupleReceiver::spawn(vec![good_server, bad_server], epoch, 8);
        // The healthy connection delivers one message then a clean EOF.
        let tx = TcpTupleSender::new(good_client, epoch);
        tx.send(SourceMessage::CloseWindow {
            window: 3,
            source: 0,
            seq: 1,
        })
        .unwrap();
        drop(tx);
        // The sick connection delivers a frame with an unknown tag.
        let mut bad_client = bad_client;
        bad_client.write_all(&[1, 0, 0, 0, 0xEE]).unwrap();
        drop(bad_client);
        let mut got: Vec<SourceMessage> = Vec::new();
        let mut transport_errors = Vec::new();
        loop {
            match TupleReceiver::recv_batch(&rx, &mut got) {
                Ok(_) => {}
                Err(RecvError::Transport(error)) => transport_errors.push(error),
                Err(RecvError::Closed) => break,
            }
        }
        assert_eq!(
            transport_errors.len(),
            1,
            "one dead connection, one error report"
        );
        assert!(!transport_errors[0].detail.is_empty());
        assert_eq!(got.len(), 1, "the healthy connection's data still lands");
        assert!(matches!(
            got[0],
            SourceMessage::CloseWindow {
                window: 3,
                source: 0,
                seq: 1
            }
        ));
    }

    #[test]
    fn reattachable_sender_swallows_peer_death_and_resumes_after_reattach() {
        let epoch = Instant::now();
        let (client, server) = loopback_pair();
        let tx = ReattachableTupleSender::new(client, epoch);
        assert!(tx.is_attached());
        drop(server);
        // Writes into the dead peer must not error; the first failed write
        // detaches the slot. Loopback needs a write or two for the RST to
        // come back, hence the bounded poll.
        let deadline = Instant::now() + Duration::from_secs(10);
        while tx.is_attached() {
            assert!(Instant::now() < deadline, "write to dead peer never failed");
            tx.send(SourceMessage::CloseWindow {
                window: 0,
                source: 0,
                seq: 0,
            })
            .unwrap();
            thread::sleep(Duration::from_millis(1));
        }
        // Detached sends are silent drops, not errors.
        tx.send(SourceMessage::CloseWindow {
            window: 1,
            source: 0,
            seq: 1,
        })
        .unwrap();
        // A replacement connection restores delivery, including the
        // EOF-on-drop contract.
        let (client2, server2) = loopback_pair();
        let rx = TcpTupleReceiver::spawn(vec![server2], epoch, 8);
        tx.reattach(client2);
        assert!(tx.is_attached());
        tx.send(SourceMessage::CloseWindow {
            window: 7,
            source: 1,
            seq: 9,
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<SourceMessage> = Vec::new();
        while !matches!(
            TupleReceiver::recv_batch(&rx, &mut got),
            Err(RecvError::Closed)
        ) {}
        assert_eq!(got.len(), 1);
        assert!(matches!(
            got[0],
            SourceMessage::CloseWindow {
                window: 7,
                source: 1,
                seq: 9
            }
        ));
    }

    #[test]
    fn attachable_partial_receiver_merges_late_connections() {
        let epoch = Instant::now();
        let (client1, server1) = loopback_pair();
        let (rx, attach) =
            TcpPartialReceiver::<HashMap<u64, u64>>::spawn_attachable(vec![server1], epoch, 8);
        let tx1 = TcpPartialSender::<HashMap<u64, u64>>::new(client1, epoch);
        tx1.send(PartialWindow {
            window: 0,
            worker: 0,
            partial: HashMap::from([(1u64, 2u64)]),
            closed_at: Instant::now(),
        })
        .unwrap();
        drop(tx1); // clean EOF on the original connection
                   // A respawned worker dials in later; its frames land in the same
                   // queue.
        let (client2, server2) = loopback_pair();
        attach.attach(server2);
        let tx2 = TcpPartialSender::<HashMap<u64, u64>>::new(client2, epoch);
        tx2.send(PartialWindow {
            window: 1,
            worker: 1,
            partial: HashMap::from([(3u64, 4u64)]),
            closed_at: Instant::now(),
        })
        .unwrap();
        drop(tx2);
        drop(attach); // no further attachment: end-of-stream may now fire
        let mut got: Vec<PartialWindow<HashMap<u64, u64>>> = Vec::new();
        while !matches!(
            PartialReceiver::recv_batch(&rx, &mut got),
            Err(RecvError::Closed)
        ) {}
        got.sort_by_key(|w| w.window);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].worker, 0);
        assert_eq!(got[1].worker, 1);
        assert_eq!(got[1].partial, HashMap::from([(3u64, 4u64)]));
    }

    #[test]
    fn connect_with_retry_reaches_a_late_listener_and_reports_exhaustion() {
        // A listener that only appears after the first attempts fail.
        let probe = TcpListener::bind(("127.0.0.1", 0)).expect("probe bind");
        let addr = probe.local_addr().expect("probe addr").to_string();
        drop(probe);
        // Nothing listening: bounded retry must return the connect error.
        let err = connect_with_retry(&addr, 2, Duration::from_millis(1));
        assert!(err.is_err(), "no listener yet: retry budget must exhaust");
        let rebind_addr = addr.clone();
        let accepter = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            let listener = TcpListener::bind(rebind_addr).expect("late bind");
            let _ = listener.accept();
        });
        let stream = connect_with_retry(&addr, 200, Duration::from_millis(5))
            .expect("late listener must be reached within the retry budget");
        drop(stream);
        accepter.join().expect("accepter join");
    }

    #[test]
    fn timestamp_rebasing_is_inverse_up_to_saturation() {
        let epoch = Instant::now();
        for us in [0u64, 1, 999_999, 12_345_678] {
            assert_eq!(instant_to_us(epoch, us_to_instant(epoch, us)), us);
        }
        // Pre-epoch instants clamp to zero rather than panicking.
        let earlier = epoch - Duration::from_secs(1);
        assert_eq!(instant_to_us(epoch, earlier), 0);
    }
}
