//! The Misra-Gries frequent-elements summary.
//!
//! Misra-Gries keeps at most `capacity` counters. An arriving monitored key
//! increments its counter; an arriving unmonitored key either takes a free
//! slot or, when the summary is full, decrements *every* counter (removing
//! those that hit zero). The estimate it reports is a **lower bound** on the
//! true count, undercounting by at most `m / (capacity + 1)`.
//!
//! In this library Misra-Gries serves as an alternative head tracker and as
//! an independent cross-check on the SpaceSaving implementation: every key
//! whose true relative frequency exceeds `1 / (capacity + 1)` must survive in
//! both summaries.

use std::collections::HashMap;
use std::hash::Hash;

use crate::FrequencyEstimator;

/// Misra-Gries summary over keys of type `K`.
#[derive(Debug, Clone)]
pub struct MisraGries<K: Eq + Hash + Clone> {
    capacity: usize,
    total: u64,
    counters: HashMap<K, u64>,
}

impl<K: Eq + Hash + Clone> MisraGries<K> {
    /// Creates a summary with at most `capacity` counters.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MisraGries capacity must be positive");
        Self {
            capacity,
            total: 0,
            counters: HashMap::with_capacity(capacity + 1),
        }
    }

    /// Maximum number of counters.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently monitored.
    #[inline]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True if nothing is monitored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Iterates over `(key, lower-bound count)` pairs in unspecified order.
    pub fn counters(&self) -> impl Iterator<Item = (&K, u64)> + '_ {
        self.counters.iter().map(|(k, &c)| (k, c))
    }

    /// Maximum undercount of any reported estimate, `m / (capacity + 1)`.
    pub fn error_bound(&self) -> u64 {
        self.total / (self.capacity as u64 + 1)
    }
}

impl<K: Eq + Hash + Clone> FrequencyEstimator<K> for MisraGries<K> {
    fn observe(&mut self, key: &K) {
        self.total += 1;
        if let Some(c) = self.counters.get_mut(key) {
            *c += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(key.clone(), 1);
            return;
        }
        // Decrement all counters; drop the ones reaching zero.
        self.counters.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    fn estimate(&self, key: &K) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, u64)> {
        let cut = (threshold * self.total as f64).ceil() as u64;
        let mut hh: Vec<(K, u64)> = self
            .counters
            .iter()
            .filter(|(_, &c)| c >= cut.max(1))
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        hh.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut mg = MisraGries::new(8);
        for k in [1u64, 1, 2, 3, 1] {
            mg.observe(&k);
        }
        assert_eq!(mg.estimate(&1), 3);
        assert_eq!(mg.estimate(&2), 1);
        assert_eq!(mg.estimate(&9), 0);
        assert_eq!(mg.total(), 5);
    }

    #[test]
    fn estimate_is_lower_bound_with_bounded_undercount() {
        let mut stream = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for i in 0..30_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = if i % 4 == 0 { i % 7 } else { state % 1000 };
            stream.push(k);
        }
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &stream {
            *truth.entry(k).or_insert(0) += 1;
        }
        let capacity = 60;
        let mut mg = MisraGries::new(capacity);
        for k in &stream {
            mg.observe(k);
        }
        let bound = stream.len() as u64 / (capacity as u64 + 1);
        assert_eq!(mg.error_bound(), bound);
        for (k, est) in mg.counters() {
            let t = truth[k];
            assert!(est <= t, "estimate {est} above true {t}");
            assert!(t - est <= bound, "undercount above bound for key {k}");
        }
        // Completeness: any key with true count above the bound survives.
        for (k, &t) in &truth {
            if t > bound {
                assert!(mg.estimate(k) > 0, "frequent key {k} lost (count {t})");
            }
        }
    }

    #[test]
    fn majority_element_survives_capacity_one() {
        let mut mg = MisraGries::new(1);
        let stream = [5u64, 1, 5, 2, 5, 3, 5, 5];
        for k in &stream {
            mg.observe(k);
        }
        assert!(mg.estimate(&5) >= 1, "majority element must be monitored");
    }

    #[test]
    fn decrement_removes_zeroed_counters() {
        let mut mg = MisraGries::new(2);
        mg.observe(&"a");
        mg.observe(&"b");
        // "c" arrives into a full summary: a and b both drop to 0 and vanish.
        mg.observe(&"c");
        assert_eq!(mg.len(), 0);
        assert_eq!(mg.estimate(&"a"), 0);
        assert_eq!(mg.total(), 3);
    }

    #[test]
    fn heavy_hitters_respects_threshold() {
        let mut mg: MisraGries<String> = MisraGries::new(10);
        for _ in 0..70 {
            mg.observe(&"dominant".to_string());
        }
        for i in 0..30 {
            mg.observe(&format!("rare{}", i % 15));
        }
        let hh = mg.heavy_hitters(0.5);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].0, "dominant");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: MisraGries<u64> = MisraGries::new(0);
    }
}
