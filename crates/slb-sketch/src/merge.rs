//! Merging per-source summaries into a global heavy-hitter view.
//!
//! In the paper each source runs its own SpaceSaving instance over the
//! sub-stream it forwards (Section III-A and \[12\]). When a global view is
//! needed — e.g. to audit the sources' combined head, or in a deployment
//! where a coordinator periodically reconciles summaries — the per-source
//! summaries must be merged without losing the error guarantees.
//!
//! The merge implemented here follows the standard counter-summary merge
//! (Berinde et al., ACM TODS 2010): for every key in the union of the two
//! monitored sets, the merged estimate is the sum of the per-summary
//! estimates, where a summary that does not monitor the key contributes its
//! `min_count` as the (upper-bound) estimate and the same amount as error.
//! The merged summary is then truncated back to the target capacity by
//! keeping the counters with the largest estimates. The resulting error bound
//! is the sum of the inputs' bounds, which preserves heavy-hitter
//! completeness for thresholds above the combined bound.

use std::collections::HashMap;
use std::hash::Hash;

use crate::space_saving::{Counter, SpaceSaving};
use crate::FrequencyEstimator;

/// The result of merging several SpaceSaving summaries: a plain list of
/// counters with the combined total, sorted by decreasing estimate.
#[derive(Debug, Clone)]
pub struct MergedSummary<K> {
    /// Combined stream length across all merged summaries.
    pub total: u64,
    /// Merged counters, sorted by decreasing estimated count, truncated to
    /// the requested capacity.
    pub counters: Vec<Counter<K>>,
}

impl<K: Eq + Hash + Clone> MergedSummary<K> {
    /// Estimated count for `key` (0 if not present in the merged set).
    pub fn estimate(&self, key: &K) -> u64 {
        self.counters
            .iter()
            .find(|c| &c.key == key)
            .map(|c| c.count)
            .unwrap_or(0)
    }

    /// Keys whose estimated relative frequency is at least `threshold`.
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<(K, u64)> {
        let cut = ((threshold * self.total as f64).ceil() as u64).max(1);
        self.counters
            .iter()
            .filter(|c| c.count >= cut)
            .map(|c| (c.key.clone(), c.count))
            .collect()
    }
}

/// Merges any number of SpaceSaving summaries into a single summary of at
/// most `capacity` counters.
///
/// Returns an empty summary when `summaries` is empty.
pub fn merge_space_saving<K: Eq + Hash + Clone>(
    summaries: &[&SpaceSaving<K>],
    capacity: usize,
) -> MergedSummary<K> {
    let total: u64 = summaries.iter().map(|s| s.total()).sum();
    // Union of monitored keys with summed estimates and errors.
    let mut merged: HashMap<K, (u64, u64)> = HashMap::new();
    for s in summaries {
        for c in s.counters() {
            let e = merged.entry(c.key.clone()).or_insert((0, 0));
            e.0 += c.count;
            e.1 += c.error;
        }
    }
    // Keys absent from a summary get that summary's min_count as estimate and
    // error contribution.
    for s in summaries {
        let min = s.min_count();
        if min == 0 {
            continue;
        }
        for (key, e) in merged.iter_mut() {
            if s.get(key).is_none() {
                e.0 += min;
                e.1 += min;
            }
        }
    }
    let mut counters: Vec<Counter<K>> = merged
        .into_iter()
        .map(|(key, (count, error))| Counter { key, count, error })
        .collect();
    counters.sort_by(|a, b| b.count.cmp(&a.count).then(a.error.cmp(&b.error)));
    counters.truncate(capacity);
    MergedSummary { total, counters }
}

/// Merges two SpaceSaving summaries into a new *summary* (not just a counter
/// list) of the given capacity, so the result can keep observing tuples or be
/// merged again. This is the merge path the windowed top-k aggregate uses:
/// worker partials are SpaceSaving instances, and the downstream aggregator
/// folds them pairwise with this function.
///
/// The counter arithmetic is [`merge_space_saving`]; the result is rebuilt
/// into a live Stream-Summary with [`SpaceSaving::from_counters`]. Totals are
/// additive (`result.total() == a.total() + b.total()`), estimates remain
/// upper bounds on the combined stream's true counts, and while both inputs
/// are below capacity (no evictions, no truncation) the merge is exact and
/// therefore associative and commutative — the regime the merge-law property
/// tests pin down.
pub fn merged_space_saving<K: Eq + Hash + Clone>(
    a: &SpaceSaving<K>,
    b: &SpaceSaving<K>,
    capacity: usize,
) -> SpaceSaving<K> {
    let merged = merge_space_saving(&[a, b], capacity);
    SpaceSaving::from_counters(capacity, merged.total, merged.counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_from(stream: &[u64], capacity: usize) -> SpaceSaving<u64> {
        let mut ss = SpaceSaving::new(capacity);
        for k in stream {
            ss.observe(k);
        }
        ss
    }

    #[test]
    fn merge_of_disjoint_streams_sums_totals() {
        let a = summary_from(&[1, 1, 1, 2], 8);
        let b = summary_from(&[3, 3, 4], 8);
        let m = merge_space_saving(&[&a, &b], 8);
        assert_eq!(m.total, 7);
        assert_eq!(m.estimate(&1), 3);
        assert_eq!(m.estimate(&3), 2);
        assert_eq!(m.estimate(&4), 1);
    }

    #[test]
    fn merge_overlapping_streams_adds_counts() {
        let a = summary_from(&[7, 7, 8], 8);
        let b = summary_from(&[7, 8, 8, 8], 8);
        let m = merge_space_saving(&[&a, &b], 8);
        assert_eq!(m.estimate(&7), 3);
        assert_eq!(m.estimate(&8), 4);
    }

    #[test]
    fn merged_estimates_remain_upper_bounds() {
        // Two skewed sub-streams over an overlapping key set, small capacity
        // so evictions happen; merged estimates must still dominate the truth.
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut streams: Vec<Vec<u64>> = vec![Vec::new(), Vec::new()];
        let mut state = 99u64;
        for i in 0..40_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = if i % 2 == 0 { i % 6 } else { state % 400 };
            *truth.entry(k).or_insert(0) += 1;
            streams[(i % 2) as usize].push(k);
        }
        let cap = 40;
        let a = summary_from(&streams[0], cap);
        let b = summary_from(&streams[1], cap);
        let m = merge_space_saving(&[&a, &b], cap);
        for c in &m.counters {
            let t = truth.get(&c.key).copied().unwrap_or(0);
            assert!(
                c.count >= t,
                "merged estimate {} below truth {} for {}",
                c.count,
                t,
                c.key
            );
        }
        // Completeness: keys above the combined error bound survive the merge.
        let combined_bound =
            streams[0].len() as u64 / cap as u64 + streams[1].len() as u64 / cap as u64;
        for (k, &t) in &truth {
            if t > combined_bound {
                assert!(m.estimate(k) > 0, "hot key {k} lost in merge (count {t})");
            }
        }
    }

    #[test]
    fn merge_respects_capacity_and_ordering() {
        let a = summary_from(
            &(0..100u64)
                .flat_map(|k| vec![k; (k % 10 + 1) as usize])
                .collect::<Vec<_>>(),
            50,
        );
        let b = summary_from(&(50..150u64).collect::<Vec<_>>(), 50);
        let m = merge_space_saving(&[&a, &b], 20);
        assert!(m.counters.len() <= 20);
        for w in m.counters.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let m: MergedSummary<u64> = merge_space_saving(&[], 10);
        assert_eq!(m.total, 0);
        assert!(m.counters.is_empty());
        assert!(m.heavy_hitters(0.1).is_empty());
    }

    #[test]
    fn merged_summary_is_live_and_keeps_observing() {
        let a = summary_from(&[1, 1, 2, 3], 8);
        let b = summary_from(&[1, 4, 4], 8);
        let mut m = merged_space_saving(&a, &b, 8);
        assert_eq!(m.total(), 7);
        assert_eq!(m.estimate(&1), 3);
        assert_eq!(m.estimate(&4), 2);
        // The reconstruction is a real Stream-Summary: it can keep counting.
        m.observe(&4);
        m.observe(&4);
        assert_eq!(m.estimate(&4), 4);
        assert_eq!(m.total(), 9);
    }

    #[test]
    fn merged_summary_truncates_to_capacity_keeping_largest() {
        let a = summary_from(
            &(0..20u64)
                .flat_map(|k| vec![k; k as usize + 1])
                .collect::<Vec<_>>(),
            32,
        );
        let b = summary_from(&[19u64; 5], 32);
        let m = merged_space_saving(&a, &b, 4);
        assert_eq!(m.len(), 4);
        assert_eq!(m.estimate(&19), 25);
        assert_eq!(m.estimate(&0), 0, "smallest counter truncated away");
        // Full at capacity: min_count reports the smallest surviving bucket.
        assert!(m.min_count() >= 17);
    }

    #[test]
    fn from_counters_round_trips_a_summary() {
        let a = summary_from(&[5, 5, 5, 9, 9, 2], 8);
        let rebuilt = SpaceSaving::from_counters(8, a.total(), a.counters());
        assert_eq!(rebuilt.total(), a.total());
        assert_eq!(rebuilt.len(), a.len());
        for c in a.counters() {
            let r = rebuilt.get(&c.key).expect("key survives round trip");
            assert_eq!((r.count, r.error), (c.count, c.error));
        }
        assert_eq!(rebuilt.sorted_counters(), a.sorted_counters());
    }

    #[test]
    fn merged_heavy_hitters_thresholded_on_combined_total() {
        let a = summary_from(&vec![1u64; 90], 4);
        let b = summary_from(&[2u64; 10], 4);
        let m = merge_space_saving(&[&a, &b], 4);
        let hh = m.heavy_hitters(0.5);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].0, 1);
    }
}
