//! Heavy-hitter substrate for the SLB (Scalable Load Balancing) library.
//!
//! The D-Choices and W-Choices partitioners of Nasir et al. (ICDE 2016) need
//! to know, *online and per source*, which keys currently belong to the head
//! of the frequency distribution. The paper uses the SpaceSaving algorithm
//! (Metwally et al., ICDT 2005) and its mergeable distributed generalization
//! (Berinde et al., TODS 2010). This crate provides:
//!
//! * [`SpaceSaving`] — the counter-based heavy-hitter algorithm with the
//!   classic Stream-Summary data structure (O(1) amortized per update).
//! * [`MisraGries`] — the deterministic frequent-elements algorithm, used as
//!   an alternative tracker and as a cross-check in tests.
//! * [`CountMinSketch`] — a linear sketch giving per-key frequency upper
//!   bounds; used for validation and for workloads with enormous key spaces.
//! * [`ExactCounter`] — exact frequencies (hash map), the ground truth for
//!   experiments and tests.
//! * [`merge`] — merging of per-source summaries into a global view, needed
//!   when several sources each track the head of their own sub-stream.
//!
//! All trackers implement [`FrequencyEstimator`], so the partitioners in
//! `slb-core` are generic over the tracking strategy.

pub mod count_min;
pub mod exact;
pub mod merge;
pub mod misra_gries;
pub mod space_saving;

pub use count_min::CountMinSketch;
pub use exact::ExactCounter;
pub use misra_gries::MisraGries;
pub use space_saving::{Counter, SpaceSaving};

use std::hash::Hash;

/// A streaming frequency estimator over keys of type `K`.
///
/// Implementations observe a stream of keys one at a time and can report
/// estimated frequencies and the current heavy hitters. The estimates come
/// with algorithm-specific guarantees documented on each implementation.
pub trait FrequencyEstimator<K: Eq + Hash + Clone> {
    /// Observes one occurrence of `key`.
    fn observe(&mut self, key: &K);

    /// Observes `count` occurrences of `key` at once.
    fn observe_many(&mut self, key: &K, count: u64) {
        for _ in 0..count {
            self.observe(key);
        }
    }

    /// Estimated number of occurrences of `key` seen so far.
    ///
    /// For SpaceSaving / Count-Min this is an upper bound on the true count;
    /// for Misra-Gries it is a lower bound.
    fn estimate(&self, key: &K) -> u64;

    /// Total number of observations processed.
    fn total(&self) -> u64;

    /// Keys whose estimated relative frequency is at least `threshold`
    /// (a fraction in `[0, 1]`), together with their estimated counts,
    /// sorted by decreasing estimated count.
    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, u64)>;

    /// Estimated relative frequency of `key` (`estimate / total`), or 0 if
    /// nothing has been observed yet.
    fn frequency(&self, key: &K) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.estimate(key) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn observe_many_default_impl_counts_correctly() {
        let mut ss = SpaceSaving::new(8);
        ss.observe_many(&"k", 5);
        assert_eq!(ss.estimate(&"k"), 5);
        assert_eq!(ss.total(), 5);
    }

    #[test]
    fn frequency_is_zero_on_empty_estimator() {
        let ss: SpaceSaving<&str> = SpaceSaving::new(4);
        assert_eq!(ss.frequency(&"missing"), 0.0);
    }
}
