//! Exact frequency counting, the ground truth used by tests and experiments.
//!
//! The simulator uses an [`ExactCounter`] to compute true key frequencies
//! when checking the accuracy of the streaming summaries and when running
//! the "distribution known a priori" analyses of Section IV-B (memory
//! overhead as a function of skew).

use std::collections::HashMap;
use std::hash::Hash;

use crate::FrequencyEstimator;

/// Exact per-key counts backed by a hash map.
#[derive(Debug, Clone, Default)]
pub struct ExactCounter<K: Eq + Hash + Clone> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Eq + Hash + Clone> ExactCounter<K> {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Creates an empty counter with pre-allocated capacity for `keys` keys.
    pub fn with_capacity(keys: usize) -> Self {
        Self {
            counts: HashMap::with_capacity(keys),
            total: 0,
        }
    }

    /// Number of distinct keys observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> + '_ {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// Returns the keys sorted by decreasing count (rank order, as the paper
    /// defines key ranks), ties broken arbitrarily but deterministically for
    /// a given map iteration order only after sorting by count.
    pub fn ranked(&self) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = self.counts.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        v
    }

    /// The probability vector `p_1 ≥ p_2 ≥ …` of the observed empirical
    /// distribution (relative frequencies in rank order).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        self.ranked()
            .into_iter()
            .map(|(_, c)| c as f64 / self.total as f64)
            .collect()
    }

    /// Relative frequency of the most frequent key (`p1`), or 0 when empty.
    pub fn p1(&self) -> f64 {
        self.ranked()
            .first()
            .map(|(_, c)| *c as f64 / self.total as f64)
            .unwrap_or(0.0)
    }
}

impl<K: Eq + Hash + Clone> FrequencyEstimator<K> for ExactCounter<K> {
    fn observe(&mut self, key: &K) {
        self.total += 1;
        *self.counts.entry(key.clone()).or_insert(0) += 1;
    }

    fn observe_many(&mut self, key: &K, count: u64) {
        self.total += count;
        *self.counts.entry(key.clone()).or_insert(0) += count;
    }

    fn estimate(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, u64)> {
        let cut = (threshold * self.total as f64).ceil() as u64;
        let mut hh: Vec<(K, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= cut.max(1))
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        hh.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ranks() {
        let mut ec = ExactCounter::new();
        for k in ["b", "a", "a", "c", "a", "b"] {
            ec.observe(&k);
        }
        assert_eq!(ec.estimate(&"a"), 3);
        assert_eq!(ec.estimate(&"b"), 2);
        assert_eq!(ec.estimate(&"c"), 1);
        assert_eq!(ec.estimate(&"z"), 0);
        assert_eq!(ec.distinct(), 3);
        assert_eq!(ec.total(), 6);
        let ranked = ec.ranked();
        assert_eq!(ranked[0].0, "a");
        assert_eq!(ranked[2].0, "c");
        assert!((ec.p1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let mut ec = ExactCounter::new();
        for i in 0..100u64 {
            ec.observe(&(i % 7));
        }
        let sum: f64 = ec.probabilities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let probs = ec.probabilities();
        for w in probs.windows(2) {
            assert!(w[0] >= w[1], "probabilities not sorted descending");
        }
    }

    #[test]
    fn heavy_hitters_exact() {
        let mut ec = ExactCounter::new();
        for _ in 0..8 {
            ec.observe(&1u64);
        }
        ec.observe(&2u64);
        ec.observe(&3u64);
        let hh = ec.heavy_hitters(0.5);
        assert_eq!(hh, vec![(1u64, 8)]);
    }

    #[test]
    fn empty_counter_edge_cases() {
        let ec: ExactCounter<u64> = ExactCounter::new();
        assert!(ec.is_empty());
        assert_eq!(ec.p1(), 0.0);
        assert!(ec.probabilities().is_empty());
        assert!(ec.heavy_hitters(0.1).is_empty());
    }
}
