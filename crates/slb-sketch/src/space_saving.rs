//! The SpaceSaving heavy-hitter algorithm with the Stream-Summary structure.
//!
//! SpaceSaving (Metwally, Agrawal, El Abbadi — ICDT 2005) monitors at most
//! `capacity` keys. When an unmonitored key arrives and the summary is full,
//! the key with the minimum counter is evicted and replaced by the new key,
//! which inherits the evicted count as its *error*. With `capacity = 1/φ`
//! counters the algorithm guarantees:
//!
//! * every key with true frequency `> φ·m` is monitored (no false negatives),
//! * for monitored keys, `true_count ≤ estimate ≤ true_count + error`, and
//!   `error ≤ m / capacity`.
//!
//! The Stream-Summary structure keeps counters grouped into buckets of equal
//! count, with buckets in increasing count order, so that both increments and
//! min-evictions run in O(1) amortized time. Buckets and counters live in
//! slab vectors and reference each other by index, keeping the structure
//! fully safe (no raw pointers) while avoiding per-update allocation.

use std::collections::HashMap;
use std::hash::Hash;

use crate::FrequencyEstimator;

/// A monitored key with its estimated count and maximum overestimation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter<K> {
    /// The monitored key.
    pub key: K,
    /// Estimated occurrence count (an upper bound on the true count).
    pub count: u64,
    /// Maximum possible overestimation: `count - error` is a lower bound on
    /// the true count.
    pub error: u64,
}

const NIL: usize = usize::MAX;

/// Internal slab node holding one monitored key.
#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    count: u64,
    error: u64,
    /// Bucket this node currently belongs to.
    bucket: usize,
    /// Previous/next node within the same bucket (doubly linked).
    prev: usize,
    next: usize,
}

/// A bucket groups all counters that share the same count value.
#[derive(Debug, Clone)]
struct Bucket {
    count: u64,
    /// First node in this bucket's child list.
    head: usize,
    /// Neighbouring buckets in increasing-count order.
    prev: usize,
    next: usize,
}

/// SpaceSaving summary over keys of type `K`.
///
/// See the module documentation for the guarantees. The summary is
/// deterministic: the same input stream always produces the same monitored
/// set and estimates (ties on eviction are broken by bucket list order).
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Eq + Hash + Clone> {
    capacity: usize,
    total: u64,
    index: HashMap<K, usize>,
    nodes: Vec<Node<K>>,
    buckets: Vec<Bucket>,
    /// Bucket with the smallest count (start of the bucket list), NIL if empty.
    min_bucket: usize,
    /// Free lists for slab reuse.
    free_nodes: Vec<usize>,
    free_buckets: Vec<usize>,
}

impl<K: Eq + Hash + Clone> SpaceSaving<K> {
    /// Creates a summary monitoring at most `capacity` keys.
    ///
    /// To find all keys with relative frequency at least `φ`, use
    /// `capacity ≥ 1/φ` (see [`Self::with_threshold`]).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SpaceSaving capacity must be positive");
        Self {
            capacity,
            total: 0,
            index: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            buckets: Vec::with_capacity(capacity.min(64)),
            min_bucket: NIL,
            free_nodes: Vec::new(),
            free_buckets: Vec::new(),
        }
    }

    /// Creates a summary sized to detect every key with relative frequency at
    /// least `phi`, i.e. with `⌈1/phi⌉` counters.
    ///
    /// # Panics
    /// Panics if `phi` is not in `(0, 1]`.
    pub fn with_threshold(phi: f64) -> Self {
        assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1], got {phi}");
        Self::new((1.0 / phi).ceil() as usize)
    }

    /// Reconstructs a summary from an explicit counter list, e.g. the output
    /// of [`crate::merge::merge_space_saving`] or a by-key partition of
    /// another summary's counters. Keys must be distinct; counters with a
    /// zero count are skipped (a live summary never monitors a key it has
    /// not seen). If more than `capacity` counters are supplied, only the
    /// largest `capacity` estimates are kept (ties broken by smaller error),
    /// exactly like the merge truncation.
    ///
    /// `total` is the claimed length of the stream the counters summarize;
    /// it is carried into [`FrequencyEstimator::total`] unchanged so that
    /// totals stay additive across merge/shard round-trips.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or a key appears twice.
    pub fn from_counters<I>(capacity: usize, total: u64, counters: I) -> Self
    where
        I: IntoIterator<Item = Counter<K>>,
    {
        let mut list: Vec<Counter<K>> = counters.into_iter().filter(|c| c.count > 0).collect();
        list.sort_by(|a, b| b.count.cmp(&a.count).then(a.error.cmp(&b.error)));
        list.truncate(capacity);
        // Insert in ascending count order so each counter's bucket is at (or
        // just past) the current tail of the bucket list: O(1) per counter.
        list.reverse();
        let mut ss = Self::new(capacity);
        ss.total = total;
        let mut tail = NIL;
        for c in list {
            let node = ss.alloc_node(c.key.clone(), c.count, c.error);
            let bucket = if tail != NIL && ss.buckets[tail].count == c.count {
                tail
            } else {
                ss.bucket_with_count_after(c.count, tail)
            };
            ss.attach_node(node, bucket);
            let previous = ss.index.insert(c.key, node);
            assert!(previous.is_none(), "duplicate key in from_counters");
            tail = bucket;
        }
        ss
    }

    /// Maximum number of keys this summary monitors.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of keys currently monitored.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no keys are monitored yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The smallest monitored count (0 if the summary is not yet full).
    ///
    /// This is the maximum error any *unmonitored* key's true count can have,
    /// and the count a newly inserted key inherits on eviction.
    pub fn min_count(&self) -> u64 {
        if self.index.len() < self.capacity || self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket].count
        }
    }

    /// Returns the monitored counter for `key`, if any.
    pub fn get(&self, key: &K) -> Option<Counter<K>> {
        self.index.get(key).map(|&i| {
            let n = &self.nodes[i];
            Counter {
                key: n.key.clone(),
                count: n.count,
                error: n.error,
            }
        })
    }

    /// Iterates over all monitored counters in unspecified order.
    pub fn counters(&self) -> impl Iterator<Item = Counter<K>> + '_ {
        self.index.values().map(move |&i| {
            let n = &self.nodes[i];
            Counter {
                key: n.key.clone(),
                count: n.count,
                error: n.error,
            }
        })
    }

    /// Returns all monitored counters sorted by decreasing estimated count.
    pub fn sorted_counters(&self) -> Vec<Counter<K>> {
        let mut v: Vec<Counter<K>> = self.counters().collect();
        v.sort_by(|a, b| b.count.cmp(&a.count).then(a.error.cmp(&b.error)));
        v
    }

    /// Guaranteed (lower-bound) count for `key`: `count - error` if monitored,
    /// zero otherwise.
    pub fn guaranteed_count(&self, key: &K) -> u64 {
        self.index
            .get(key)
            .map(|&i| self.nodes[i].count - self.nodes[i].error)
            .unwrap_or(0)
    }

    // ----- internal slab / linked-list plumbing -------------------------------

    fn alloc_bucket(&mut self, count: u64) -> usize {
        let b = Bucket {
            count,
            head: NIL,
            prev: NIL,
            next: NIL,
        };
        if let Some(i) = self.free_buckets.pop() {
            self.buckets[i] = b;
            i
        } else {
            self.buckets.push(b);
            self.buckets.len() - 1
        }
    }

    fn alloc_node(&mut self, key: K, count: u64, error: u64) -> usize {
        let n = Node {
            key,
            count,
            error,
            bucket: NIL,
            prev: NIL,
            next: NIL,
        };
        if let Some(i) = self.free_nodes.pop() {
            self.nodes[i] = n;
            i
        } else {
            self.nodes.push(n);
            self.nodes.len() - 1
        }
    }

    /// Unlinks `node` from its bucket's child list; frees the bucket if it
    /// becomes empty. Returns the bucket the node was in.
    fn detach_node(&mut self, node: usize) -> usize {
        let (bucket, prev, next) = {
            let n = &self.nodes[node];
            (n.bucket, n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.buckets[bucket].head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        }
        self.nodes[node].prev = NIL;
        self.nodes[node].next = NIL;
        self.nodes[node].bucket = NIL;
        if self.buckets[bucket].head == NIL {
            // Bucket now empty: splice it out of the bucket list.
            let (bprev, bnext) = (self.buckets[bucket].prev, self.buckets[bucket].next);
            if bprev != NIL {
                self.buckets[bprev].next = bnext;
            } else {
                self.min_bucket = bnext;
            }
            if bnext != NIL {
                self.buckets[bnext].prev = bprev;
            }
            self.free_buckets.push(bucket);
        }
        bucket
    }

    /// Pushes `node` onto the child list of `bucket`.
    fn attach_node(&mut self, node: usize, bucket: usize) {
        let old_head = self.buckets[bucket].head;
        self.nodes[node].bucket = bucket;
        self.nodes[node].prev = NIL;
        self.nodes[node].next = old_head;
        if old_head != NIL {
            self.nodes[old_head].prev = node;
        }
        self.buckets[bucket].head = node;
    }

    /// Finds or creates the bucket with exactly `count`, positioned right
    /// after `after` (which may be NIL, meaning "insert at the front").
    fn bucket_with_count_after(&mut self, count: u64, after: usize) -> usize {
        let next = if after == NIL {
            self.min_bucket
        } else {
            self.buckets[after].next
        };
        if next != NIL && self.buckets[next].count == count {
            return next;
        }
        let b = self.alloc_bucket(count);
        self.buckets[b].prev = after;
        self.buckets[b].next = next;
        if after == NIL {
            self.min_bucket = b;
        } else {
            self.buckets[after].next = b;
        }
        if next != NIL {
            self.buckets[next].prev = b;
        }
        b
    }

    /// Increments the counter stored at `node` by one, moving it to the
    /// appropriate bucket.
    fn increment_node(&mut self, node: usize) {
        let old_bucket = self.nodes[node].bucket;
        let new_count = self.nodes[node].count + 1;
        // Does the next-higher bucket already have the new count? We must
        // look *before* detaching, because detaching may free the old bucket.
        let next_bucket = self.buckets[old_bucket].next;
        let old_prev = self.buckets[old_bucket].prev;
        let old_count = self.buckets[old_bucket].count;
        debug_assert_eq!(old_count + 1, new_count);

        self.detach_node(node);
        self.nodes[node].count = new_count;

        // After detaching, the old bucket may have been freed. Work out the
        // anchor bucket that precedes the position for `new_count`.
        let anchor = if self.buckets_contains(old_bucket) {
            old_bucket
        } else {
            old_prev
        };
        let target = if next_bucket != NIL
            && self.buckets_contains(next_bucket)
            && self.buckets[next_bucket].count == new_count
        {
            next_bucket
        } else {
            self.bucket_with_count_after(new_count, anchor)
        };
        self.attach_node(node, target);
    }

    /// True if `bucket` is currently live (not on the free list).
    fn buckets_contains(&self, bucket: usize) -> bool {
        bucket != NIL && !self.free_buckets.contains(&bucket)
    }

    /// Evicts one node from the minimum bucket and returns (node index,
    /// evicted count). The node is detached and its key removed from the
    /// index, but the slab entry is reused by the caller.
    fn evict_min(&mut self) -> (usize, u64) {
        debug_assert!(self.min_bucket != NIL, "evict_min on empty summary");
        let node = self.buckets[self.min_bucket].head;
        let count = self.buckets[self.min_bucket].count;
        let key = self.nodes[node].key.clone();
        self.detach_node(node);
        self.index.remove(&key);
        (node, count)
    }

    /// Observes one occurrence of `key` and returns the key's estimated
    /// count *before* and *after* the update, using a single index probe.
    ///
    /// The "before" estimate is what [`FrequencyEstimator::estimate`] would
    /// have returned just prior to this call (0 for an unmonitored key); the
    /// "after" estimate is what it returns now. Callers that need to detect
    /// threshold crossings (e.g. head-membership transitions) can do so from
    /// this single probe instead of bracketing `observe` with two extra
    /// `estimate` lookups.
    pub fn observe_counts(&mut self, key: &K) -> (u64, u64) {
        self.total += 1;
        if let Some(&node) = self.index.get(key) {
            let before = self.nodes[node].count;
            self.increment_node(node);
            return (before, before + 1);
        }
        if self.index.len() < self.capacity {
            let node = self.alloc_node(key.clone(), 1, 0);
            let bucket = self.bucket_with_count_after(1, NIL);
            self.attach_node(node, bucket);
            self.index.insert(key.clone(), node);
            return (0, 1);
        }
        // Summary full: replace the minimum counter.
        let (node, min_count) = self.evict_min();
        self.nodes[node].key = key.clone();
        self.nodes[node].count = min_count;
        self.nodes[node].error = min_count;
        let bucket = self.bucket_with_count_after(min_count, NIL);
        debug_assert_eq!(self.buckets[bucket].count, min_count);
        self.attach_node(node, bucket);
        self.index.insert(key.clone(), node);
        self.increment_node(node);
        (0, min_count + 1)
    }
}

impl<K: Eq + Hash + Clone> FrequencyEstimator<K> for SpaceSaving<K> {
    fn observe(&mut self, key: &K) {
        let _ = self.observe_counts(key);
    }

    fn estimate(&self, key: &K) -> u64 {
        self.index
            .get(key)
            .map(|&i| self.nodes[i].count)
            .unwrap_or(0)
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, u64)> {
        let cut = (threshold * self.total as f64).ceil() as u64;
        let mut hh: Vec<(K, u64)> = self
            .counters()
            .filter(|c| c.count >= cut.max(1))
            .map(|c| (c.key, c.count))
            .collect();
        hh.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_counts(stream: &[u64]) -> HashMap<u64, u64> {
        let mut m = HashMap::new();
        for &k in stream {
            *m.entry(k).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn counts_exactly_when_under_capacity() {
        let mut ss = SpaceSaving::new(16);
        let stream = [1u64, 2, 1, 3, 1, 2, 4, 1];
        for k in &stream {
            ss.observe(k);
        }
        assert_eq!(ss.estimate(&1), 4);
        assert_eq!(ss.estimate(&2), 2);
        assert_eq!(ss.estimate(&3), 1);
        assert_eq!(ss.estimate(&4), 1);
        assert_eq!(ss.estimate(&99), 0);
        assert_eq!(ss.total(), 8);
        assert_eq!(ss.min_count(), 0, "not yet full");
        for c in ss.counters() {
            assert_eq!(c.error, 0, "no error while under capacity");
        }
    }

    #[test]
    fn eviction_inherits_min_count_as_error() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(&"a");
        ss.observe(&"a");
        ss.observe(&"b");
        // Summary full with {a:2, b:1}; new key evicts b.
        ss.observe(&"c");
        let c = ss.get(&"c").expect("c must be monitored");
        assert_eq!(c.count, 2, "inherits min count 1, plus its own occurrence");
        assert_eq!(c.error, 1);
        assert!(ss.get(&"b").is_none(), "b was evicted");
        assert_eq!(ss.len(), 2);
    }

    #[test]
    fn estimate_is_always_upper_bound_and_error_bounded() {
        // Skewed synthetic stream, small capacity.
        let mut stream = Vec::new();
        let mut state = 88172645463325252u64;
        for i in 0..20_000u64 {
            // xorshift for variety plus guaranteed hot keys
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = if i % 3 == 0 { i % 5 } else { state % 500 };
            stream.push(k);
        }
        let truth = exact_counts(&stream);
        let capacity = 50;
        let mut ss = SpaceSaving::new(capacity);
        for k in &stream {
            ss.observe(k);
        }
        let m = stream.len() as u64;
        assert_eq!(ss.total(), m);
        for c in ss.counters() {
            let t = truth[&c.key];
            assert!(c.count >= t, "estimate {} < true {}", c.count, t);
            assert!(c.count - c.error <= t, "guaranteed count exceeds truth");
            assert!(c.error <= m / capacity as u64, "error above m/k bound");
        }
        // Every key with frequency > m/capacity must be monitored.
        for (k, &t) in &truth {
            if t > m / capacity as u64 {
                assert!(ss.get(k).is_some(), "frequent key {k} missing (count {t})");
            }
        }
    }

    #[test]
    fn heavy_hitters_sorted_and_thresholded() {
        // Total 100 observations. Threshold 0.2 → only "hot" and "warm".
        let mut ss: SpaceSaving<String> = SpaceSaving::new(10);
        for _ in 0..60 {
            ss.observe(&"hot".to_string());
        }
        for _ in 0..30 {
            ss.observe(&"warm".to_string());
        }
        for i in 0..10 {
            ss.observe(&format!("cold{i}"));
        }
        let hh = ss.heavy_hitters(0.2);
        assert_eq!(hh.len(), 2);
        assert_eq!(hh[0].0, "hot");
        assert_eq!(hh[1].0, "warm");
        assert!(hh[0].1 >= hh[1].1);
    }

    #[test]
    fn min_count_tracks_smallest_monitored_counter_when_full() {
        let mut ss = SpaceSaving::new(3);
        for (k, n) in [("a", 5), ("b", 3), ("c", 2)] {
            for _ in 0..n {
                ss.observe(&k);
            }
        }
        assert_eq!(ss.min_count(), 2);
        ss.observe(&"c");
        assert_eq!(ss.min_count(), 3);
    }

    #[test]
    fn with_threshold_sizes_capacity() {
        let ss: SpaceSaving<u64> = SpaceSaving::with_threshold(0.01);
        assert_eq!(ss.capacity(), 100);
        let ss: SpaceSaving<u64> = SpaceSaving::with_threshold(1.0);
        assert_eq!(ss.capacity(), 1);
    }

    #[test]
    fn sorted_counters_is_descending() {
        let mut ss = SpaceSaving::new(8);
        for i in 0..8u64 {
            for _ in 0..=i {
                ss.observe(&i);
            }
        }
        let sorted = ss.sorted_counters();
        for w in sorted.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        assert_eq!(sorted[0].key, 7);
    }

    #[test]
    fn guaranteed_count_is_zero_for_unmonitored() {
        let mut ss = SpaceSaving::new(2);
        ss.observe(&1u64);
        assert_eq!(ss.guaranteed_count(&2u64), 0);
        assert_eq!(ss.guaranteed_count(&1u64), 1);
    }

    #[test]
    fn single_counter_capacity_tracks_majority_candidate() {
        let mut ss = SpaceSaving::new(1);
        let stream = [1u64, 2, 1, 1, 3, 1, 1];
        for k in &stream {
            ss.observe(k);
        }
        // With one counter the monitored key after a majority-dominated
        // stream is the majority element.
        assert_eq!(ss.len(), 1);
        let c = ss.sorted_counters().remove(0);
        assert_eq!(c.key, 1);
        assert!(c.count >= 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: SpaceSaving<u64> = SpaceSaving::new(0);
    }

    #[test]
    fn observe_counts_reports_before_and_after_estimates() {
        // Across every code path (monitored increment, insertion under
        // capacity, eviction), the pair must equal what bracketing the
        // update with two `estimate` calls would have reported.
        let mut ss = SpaceSaving::new(3);
        let mut reference = SpaceSaving::new(3);
        let stream = [1u64, 2, 1, 3, 4, 4, 5, 1, 6, 2, 7, 7, 7, 1];
        for k in &stream {
            let before = reference.estimate(k);
            reference.observe(k);
            let after = reference.estimate(k);
            assert_eq!(ss.observe_counts(k), (before, after), "key {k}");
        }
        assert_eq!(ss.total(), reference.total());
    }

    #[test]
    fn long_adversarial_cycle_does_not_break_structure() {
        // Round-robin over more keys than capacity continuously evicts;
        // the structure must stay consistent and total must be exact.
        let mut ss = SpaceSaving::new(4);
        for i in 0..10_000u64 {
            ss.observe(&(i % 9));
        }
        assert_eq!(ss.total(), 10_000);
        assert_eq!(ss.len(), 4);
        // All estimates bounded by total and at least total/9 (every key is
        // equally frequent, estimate must overcount).
        for c in ss.counters() {
            assert!(c.count <= 10_000);
            assert!(c.count >= 10_000 / 9, "estimate {} too small", c.count);
        }
    }
}
