//! Count-Min sketch: a linear sketch of key frequencies.
//!
//! The sketch maintains `depth` rows of `width` counters. Each observation
//! increments one counter per row (chosen by a per-row hash); the estimate
//! for a key is the minimum of its counters, which overestimates the true
//! count by at most `ε·m` with probability `1 − δ`, where `ε = e / width`
//! and `δ = e^{-depth}`.
//!
//! The partitioners use SpaceSaving for head detection (as in the paper), but
//! Count-Min is valuable as an independent estimator in tests, for workloads
//! whose key space is too large to monitor individually, and for the memory
//! accounting experiments where a fixed-size summary is preferable.

use std::hash::Hash;
use std::marker::PhantomData;

use slb_hash::KeyHash;

use crate::FrequencyEstimator;

/// Count-Min sketch over keys that can be hashed via [`KeyHash`].
#[derive(Debug, Clone)]
pub struct CountMinSketch<K> {
    width: usize,
    depth: usize,
    total: u64,
    rows: Vec<u64>,
    seeds: Vec<u64>,
    _marker: PhantomData<K>,
}

impl<K: KeyHash + Eq + Hash + Clone> CountMinSketch<K> {
    /// Creates a sketch with the given `width` (counters per row) and `depth`
    /// (number of rows).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> Self {
        assert!(width > 0, "width must be positive");
        assert!(depth > 0, "depth must be positive");
        let mut sm = slb_hash::SplitMix64::new(seed);
        let seeds = (0..depth).map(|_| sm.next_u64()).collect();
        Self {
            width,
            depth,
            total: 0,
            rows: vec![0; width * depth],
            seeds,
            _marker: PhantomData,
        }
    }

    /// Creates a sketch guaranteeing error at most `epsilon · m` with
    /// probability at least `1 − delta`.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
    pub fn with_error(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil() as usize;
        Self::new(width.max(1), depth.max(1), seed)
    }

    /// Counters per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The additive error guarantee `ε·m` for the current stream length.
    pub fn error_bound(&self) -> f64 {
        std::f64::consts::E / self.width as f64 * self.total as f64
    }

    #[inline]
    fn cell(&self, row: usize, key: &K) -> usize {
        let h = key.key_hash(self.seeds[row]);
        row * self.width + slb_hash::bucket_of(h, self.width)
    }
}

impl<K: KeyHash + Eq + Hash + Clone> FrequencyEstimator<K> for CountMinSketch<K> {
    fn observe(&mut self, key: &K) {
        self.total += 1;
        for row in 0..self.depth {
            let cell = self.cell(row, key);
            self.rows[cell] += 1;
        }
    }

    fn observe_many(&mut self, key: &K, count: u64) {
        self.total += count;
        for row in 0..self.depth {
            let cell = self.cell(row, key);
            self.rows[cell] += count;
        }
    }

    fn estimate(&self, key: &K) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[self.cell(row, key)])
            .min()
            .unwrap_or(0)
    }

    fn total(&self) -> u64 {
        self.total
    }

    /// Count-Min cannot enumerate keys by itself; callers must supply the
    /// candidate set. This implementation therefore returns an empty vector;
    /// use [`CountMinSketch::heavy_hitters_among`] instead.
    fn heavy_hitters(&self, _threshold: f64) -> Vec<(K, u64)> {
        Vec::new()
    }
}

impl<K: KeyHash + Eq + Hash + Clone> CountMinSketch<K> {
    /// Returns the keys among `candidates` whose estimated relative frequency
    /// is at least `threshold`, sorted by decreasing estimate.
    pub fn heavy_hitters_among<'a, I>(&self, candidates: I, threshold: f64) -> Vec<(K, u64)>
    where
        I: IntoIterator<Item = &'a K>,
        K: 'a,
    {
        let cut = (threshold * self.total as f64).ceil() as u64;
        let mut hh: Vec<(K, u64)> = candidates
            .into_iter()
            .map(|k| (k.clone(), self.estimate(k)))
            .filter(|(_, c)| *c >= cut.max(1))
            .collect();
        hh.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        hh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cms: CountMinSketch<u64> = CountMinSketch::new(64, 4, 1);
        let mut truth = std::collections::HashMap::new();
        let mut state = 7u64;
        for _ in 0..50_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = state % 300;
            cms.observe(&k);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        for (k, &t) in &truth {
            assert!(cms.estimate(k) >= t, "underestimate for {k}");
        }
    }

    #[test]
    fn overestimate_stays_within_bound_mostly() {
        let mut cms: CountMinSketch<u64> = CountMinSketch::with_error(0.01, 0.01, 3);
        let mut truth = std::collections::HashMap::new();
        let mut state = 13u64;
        let m = 20_000u64;
        for _ in 0..m {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let k = state % 2_000;
            cms.observe(&k);
            *truth.entry(k).or_insert(0u64) += 1;
        }
        let bound = cms.error_bound();
        let violations = truth
            .iter()
            .filter(|(k, &t)| (cms.estimate(k) - t) as f64 > bound)
            .count();
        // delta = 1% per key; allow a small number of violations.
        assert!(
            violations <= truth.len() / 20,
            "{violations} of {} above bound",
            truth.len()
        );
    }

    #[test]
    fn observe_many_equals_repeated_observe() {
        let mut a: CountMinSketch<u64> = CountMinSketch::new(32, 3, 9);
        let mut b: CountMinSketch<u64> = CountMinSketch::new(32, 3, 9);
        a.observe_many(&42, 17);
        for _ in 0..17 {
            b.observe(&42);
        }
        assert_eq!(a.estimate(&42), b.estimate(&42));
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn with_error_dimensions() {
        let cms: CountMinSketch<u64> = CountMinSketch::with_error(0.001, 0.01, 0);
        assert!(cms.width() >= 2718);
        assert!(cms.depth() >= 5);
    }

    #[test]
    fn heavy_hitters_among_candidates() {
        let mut cms: CountMinSketch<String> = CountMinSketch::new(128, 4, 5);
        for _ in 0..90 {
            cms.observe(&"hot".to_string());
        }
        for i in 0..10 {
            cms.observe(&format!("cold{i}"));
        }
        let candidates: Vec<String> = std::iter::once("hot".to_string())
            .chain((0..10).map(|i| format!("cold{i}")))
            .collect();
        let hh = cms.heavy_hitters_among(candidates.iter(), 0.5);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].0, "hot");
    }

    #[test]
    fn unseen_key_estimate_is_low() {
        let mut cms: CountMinSketch<u64> = CountMinSketch::new(1024, 5, 11);
        for k in 0..100u64 {
            cms.observe(&k);
        }
        // A key never observed should have a very small (likely zero) estimate.
        assert!(cms.estimate(&999_999) <= 2);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _: CountMinSketch<u64> = CountMinSketch::new(0, 2, 0);
    }
}
