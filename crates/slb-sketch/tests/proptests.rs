//! Property-based tests for the heavy-hitter substrate.
//!
//! These check the published guarantees of each summary on arbitrary streams
//! rather than hand-picked ones:
//! * SpaceSaving: estimates are upper bounds, errors bounded by m/k, and
//!   every φ-heavy key is monitored for k ≥ 1/φ.
//! * Misra-Gries: estimates are lower bounds with undercount ≤ m/(k+1).
//! * Count-Min: estimates never underestimate.
//! * Merge: merged estimates dominate the true counts of the combined stream.

use proptest::prelude::*;
use std::collections::HashMap;

use slb_sketch::{
    merge::{merge_space_saving, merged_space_saving},
    CountMinSketch, ExactCounter, FrequencyEstimator, MisraGries, SpaceSaving,
};

/// A skew-friendly stream strategy: keys drawn from a small universe with a
/// bias toward low key identifiers, lengths up to a few thousand.
fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![
            3 => 0u64..5,      // hot keys
            2 => 5u64..50,     // warm keys
            1 => 50u64..5_000, // cold tail
        ],
        1..3_000,
    )
}

fn exact(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &k in stream {
        *m.entry(k).or_insert(0u64) += 1;
    }
    m
}

proptest! {
    // 64 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    #[test]
    fn space_saving_guarantees(stream in stream_strategy(), capacity in 1usize..200) {
        let truth = exact(&stream);
        let mut ss = SpaceSaving::new(capacity);
        for k in &stream {
            ss.observe(k);
        }
        let m = stream.len() as u64;
        prop_assert_eq!(ss.total(), m);
        prop_assert!(ss.len() <= capacity);
        for c in ss.counters() {
            let t = truth.get(&c.key).copied().unwrap_or(0);
            prop_assert!(c.count >= t, "estimate below truth");
            prop_assert!(c.count - c.error <= t, "guaranteed count above truth");
            prop_assert!(c.error <= m / capacity as u64 + 1, "error bound violated");
        }
        // Completeness: every key with count > m/capacity is monitored.
        for (k, &t) in &truth {
            if t > m / capacity as u64 {
                prop_assert!(ss.get(k).is_some(), "heavy key {} lost", k);
            }
        }
    }

    #[test]
    fn misra_gries_guarantees(stream in stream_strategy(), capacity in 1usize..200) {
        let truth = exact(&stream);
        let mut mg = MisraGries::new(capacity);
        for k in &stream {
            mg.observe(k);
        }
        let m = stream.len() as u64;
        let bound = m / (capacity as u64 + 1);
        prop_assert!(mg.len() <= capacity);
        for (k, &t) in &truth {
            let est = mg.estimate(k);
            prop_assert!(est <= t, "MG overestimates");
            prop_assert!(t - est <= bound, "MG undercount above bound");
        }
    }

    #[test]
    fn count_min_never_underestimates(stream in stream_strategy(), width in 8usize..256, depth in 1usize..6) {
        let truth = exact(&stream);
        let mut cms: CountMinSketch<u64> = CountMinSketch::new(width, depth, 42);
        for k in &stream {
            cms.observe(k);
        }
        for (k, &t) in &truth {
            prop_assert!(cms.estimate(k) >= t);
        }
    }

    #[test]
    fn exact_counter_matches_hashmap(stream in stream_strategy()) {
        let truth = exact(&stream);
        let mut ec = ExactCounter::new();
        for k in &stream {
            ec.observe(k);
        }
        prop_assert_eq!(ec.distinct(), truth.len());
        for (k, &t) in &truth {
            prop_assert_eq!(ec.estimate(k), t);
        }
    }

    #[test]
    fn merged_summaries_dominate_combined_truth(
        stream_a in stream_strategy(),
        stream_b in stream_strategy(),
        capacity in 4usize..100,
    ) {
        let mut truth = exact(&stream_a);
        for (k, v) in exact(&stream_b) {
            *truth.entry(k).or_insert(0) += v;
        }
        let mut a = SpaceSaving::new(capacity);
        for k in &stream_a {
            a.observe(k);
        }
        let mut b = SpaceSaving::new(capacity);
        for k in &stream_b {
            b.observe(k);
        }
        let merged = merge_space_saving(&[&a, &b], capacity);
        prop_assert_eq!(merged.total, (stream_a.len() + stream_b.len()) as u64);
        for c in &merged.counters {
            let t = truth.get(&c.key).copied().unwrap_or(0);
            prop_assert!(c.count >= t, "merged estimate below combined truth");
        }
    }

    /// SpaceSaving and Misra-Gries bracket the true count from above and
    /// below respectively, so SS estimate >= MG estimate for monitored keys.
    #[test]
    fn space_saving_dominates_misra_gries(stream in stream_strategy(), capacity in 2usize..100) {
        let mut ss = SpaceSaving::new(capacity);
        let mut mg = MisraGries::new(capacity);
        for k in &stream {
            ss.observe(k);
            mg.observe(k);
        }
        for (k, mg_est) in mg.counters() {
            if let Some(c) = ss.get(k) {
                prop_assert!(c.count >= mg_est, "SS {} < MG {} for key {}", c.count, mg_est, k);
            }
        }
    }

    /// `from_counters` must rebuild a summary exactly: same total, same
    /// counters, same min_count, and the rebuilt structure must keep
    /// observing with unchanged semantics (checked against the original
    /// continuing in lockstep).
    #[test]
    fn from_counters_round_trips_and_stays_live(
        stream in stream_strategy(),
        extra in stream_strategy(),
        capacity in 1usize..100,
    ) {
        let mut original = SpaceSaving::new(capacity);
        for k in &stream {
            original.observe(k);
        }
        let mut rebuilt = SpaceSaving::from_counters(capacity, original.total(), original.counters());
        prop_assert_eq!(rebuilt.total(), original.total());
        prop_assert_eq!(rebuilt.len(), original.len());
        prop_assert_eq!(rebuilt.min_count(), original.min_count());
        for c in original.counters() {
            let r = rebuilt.get(&c.key);
            prop_assert!(r.is_some(), "key {} lost in round trip", c.key);
            let r = r.unwrap();
            prop_assert_eq!(r.count, c.count);
            prop_assert_eq!(r.error, c.error);
        }
        // Same continuation stream → same estimates and same total, proving
        // the rebuilt bucket structure is a faithful Stream-Summary.
        for k in &extra {
            original.observe(k);
            rebuilt.observe(k);
            prop_assert_eq!(rebuilt.estimate(k), original.estimate(k));
        }
        prop_assert_eq!(rebuilt.total(), original.total());
    }

    /// The pairwise summary merge (`merged_space_saving`, the windowed
    /// top-k merge path): totals are additive, merged estimates dominate
    /// the combined truth, and while both inputs stay below capacity the
    /// merge is the exact sum of per-key counts.
    #[test]
    fn merged_space_saving_is_exact_below_capacity_and_sound_above(
        stream_a in stream_strategy(),
        stream_b in stream_strategy(),
        capacity in 1usize..100,
    ) {
        let mut truth = exact(&stream_a);
        for (k, v) in exact(&stream_b) {
            *truth.entry(k).or_insert(0) += v;
        }
        let mut a = SpaceSaving::new(capacity);
        for k in &stream_a {
            a.observe(k);
        }
        let mut b = SpaceSaving::new(capacity);
        for k in &stream_b {
            b.observe(k);
        }
        let merged = merged_space_saving(&a, &b, capacity);
        prop_assert_eq!(merged.total(), (stream_a.len() + stream_b.len()) as u64);
        for c in merged.counters() {
            let t = truth.get(&c.key).copied().unwrap_or(0);
            prop_assert!(c.count >= t, "merged estimate below combined truth");
        }
        let no_evictions =
            exact(&stream_a).len() <= capacity && exact(&stream_b).len() <= capacity;
        if no_evictions && truth.len() <= capacity {
            // Exact regime: no evictions in the inputs, no truncation in
            // the merge → the merged summary IS the combined exact count.
            prop_assert_eq!(merged.len(), truth.len());
            for (k, &t) in &truth {
                prop_assert_eq!(merged.estimate(k), t, "exact-regime estimate diverged");
                prop_assert_eq!(merged.guaranteed_count(k), t);
            }
        }
    }
}
