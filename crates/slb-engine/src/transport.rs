//! The engine's pluggable transport layer.
//!
//! The topology has exactly four kinds of hop:
//!
//! 1. **source → worker tuple batches** ([`TupleBatch`]) — the hot path,
//! 2. **source → worker punctuation** ([`SourceMessage::CloseWindow`]) —
//!    the markers that close tuple-count windows,
//! 3. **worker → aggregator partials** ([`PartialWindow`]) — one finalized
//!    per-window shard slice per worker per aggregator,
//! 4. **worker → source recovery feedback** ([`ReplayRequest`]) — a
//!    recovering worker asking a source to re-send from a sequence cursor.
//!
//! A [`Transport`] supplies the channel endpoints for those hops. The run
//! loop in [`crate::topology`] is generic over it, so the *same* phased
//! source/worker/aggregator code drives both the in-process crossbeam
//! backend ([`InProc`], the default — bit-for-bit the pre-transport
//! behaviour) and networked backends such as the TCP transport in the
//! `slb-net` crate. Routing, windowing, and aggregation are transport-blind
//! by construction; the cross-backend differential suite turns that claim
//! into an exact equality check on merged windowed counts.
//!
//! ## Semantics every transport must provide
//!
//! * **FIFO per sender per channel.** The punctuation protocol relies on a
//!   worker seeing every tuple a source routed to it for window `w` before
//!   that source's `CloseWindow { w }` marker. Messages from *different*
//!   senders may interleave arbitrarily.
//! * **Bounded buffering.** `tuple_channels` receives the queue capacity in
//!   batches (derived from `queue_capacity` and `batch_size` via
//!   [`capacity_in_batches`] — the single place that conversion lives);
//!   senders must block once the receiver's queue is full so that
//!   back-pressure reaches the sources, which is what makes the most loaded
//!   worker the throughput bottleneck.
//! * **Disconnect on drop.** When every sender handle for a channel has been
//!   dropped, the receiver's `recv_batch` must drain the remaining messages
//!   and then report [`ChannelClosed`] — that is how the stages terminate.

use std::time::Instant;

use crossbeam_channel::{bounded, Receiver, Sender};
use slb_workloads::KeyId;

use crate::windows::WindowId;

/// A batch of tuples in flight to one worker: the keys, the window they all
/// belong to (sources never let a batch span a boundary), and the single
/// timestamp taken when the batch's first tuple was buffered.
pub struct TupleBatch {
    /// The routed keys, in source emission order.
    pub keys: Vec<KeyId>,
    /// The window every key in the batch belongs to.
    pub window: WindowId,
    /// Index of the source that emitted the batch.
    pub source: usize,
    /// Position of this message in the per-(source, worker) sequence. Every
    /// message a source sends to one worker — batch or close marker —
    /// carries the next consecutive number, so the receiver can detect both
    /// duplicates (replay overlap) and gaps (loss) exactly.
    pub seq: u64,
    /// When the batch's first tuple was buffered at the source.
    pub emitted_at: Instant,
}

/// One message on a source → worker channel.
pub enum SourceMessage {
    /// A batch of same-window tuples.
    Batch(TupleBatch),
    /// Punctuation: the sending source has emitted every tuple it will ever
    /// emit for `window` (and has flushed the batches carrying them).
    CloseWindow {
        /// The window the sending source has finished.
        window: WindowId,
        /// Index of the source that finished it.
        source: usize,
        /// Position in the per-(source, worker) sequence (see
        /// [`TupleBatch::seq`]).
        seq: u64,
    },
}

impl SourceMessage {
    /// The (source, sequence) coordinates of the message.
    pub fn source_seq(&self) -> (usize, u64) {
        match self {
            SourceMessage::Batch(batch) => (batch.source, batch.seq),
            SourceMessage::CloseWindow { source, seq, .. } => (*source, *seq),
        }
    }
}

/// One worker's finalized partial aggregate for one window, sliced to one
/// aggregator shard's key range.
pub struct PartialWindow<P> {
    /// The window the partial belongs to.
    pub window: WindowId,
    /// Index of the worker that finalized the window. Aggregators count
    /// contributions by *distinct* worker, so a recovered worker re-sending
    /// a partial it already shipped is dropped as a duplicate instead of
    /// double-counted.
    pub worker: usize,
    /// The shard slice of the worker's partial aggregate.
    pub partial: P,
    /// When the worker finalized the window (all close markers collected).
    pub closed_at: Instant,
}

/// A recovering worker's request that a source re-send its stream from a
/// sequence cursor. Carried on the worker → source feedback hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayRequest {
    /// The worker asking for replay.
    pub worker: usize,
    /// First per-(source, worker) sequence number the worker is missing;
    /// the source re-sends every message to that worker with `seq >= from`.
    pub from_seq: u64,
}

/// The error every transport operation reports once the peer is gone: all
/// receivers dropped (for senders) or all senders dropped and the queue
/// drained (for receivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl std::fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("transport channel closed")
    }
}

impl std::error::Error for ChannelClosed {}

/// A transport-level receive failure that is *not* a clean shutdown: a
/// reader thread observed a malformed frame or a failed read from one peer
/// connection. Distinct from [`ChannelClosed`] so stage loops can tell a
/// crashed peer from an orderly EOF — the stage counts it
/// ([`crate::RecoveryMetrics::transport_errors`]) and keeps receiving from
/// the remaining connections instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportError {
    /// The peer connection the error came from (transport-specific label).
    pub peer: String,
    /// What went wrong (decode error, I/O error).
    pub detail: String,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transport error from {}: {}", self.peer, self.detail)
    }
}

impl std::error::Error for TransportError {}

/// Why a `recv_batch` produced no messages: the channel shut down cleanly
/// (every sender dropped, queue drained) or one peer connection failed.
/// `Closed` is terminal; `Transport` is survivable — later calls keep
/// delivering messages from the healthy connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// All senders gone and the queue drained: the orderly end of stream.
    Closed,
    /// One connection died mid-stream; the channel itself is still open.
    Transport(TransportError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("transport channel closed"),
            RecvError::Transport(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RecvError {}

/// Sending half of a source → worker channel. Cloned once per source; the
/// channel disconnects when the last clone drops.
pub trait TupleSender: Send + Clone + 'static {
    /// Blocks until there is room, then enqueues `message`.
    fn send(&self, message: SourceMessage) -> Result<(), ChannelClosed>;

    /// A spent batch buffer handed back by the receiving worker (see
    /// [`TupleReceiver::recycle`]), ready to be cleared and refilled. The
    /// default — for backends without a return path — is `None`, which
    /// makes the source allocate a fresh buffer as before.
    fn take_recycled(&self) -> Option<Vec<KeyId>> {
        None
    }

    /// A racy `(queued_messages, capacity)` snapshot of the channel, for
    /// telemetry high-water marks. Sources sample it once per sent batch —
    /// never on the per-tuple path — so an implementation may take a lock.
    /// The default `None` is for backends that cannot observe their queue
    /// cheaply (a TCP socket's depth lives in kernel buffers).
    fn queue_depth_hint(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Receiving half of a source → worker channel.
pub trait TupleReceiver: Send + 'static {
    /// Blocks until at least one message is available, then appends every
    /// queued message to `out` and returns how many were appended. Reports
    /// [`RecvError::Closed`] once all senders are gone and the queue is
    /// empty, or [`RecvError::Transport`] when a peer connection failed
    /// mid-stream (survivable: keep calling for the healthy connections).
    fn recv_batch(&self, out: &mut Vec<SourceMessage>) -> Result<usize, RecvError>;

    /// Offers a consumed batch's key buffer back to the senders so the
    /// steady state can run allocation-free. Purely an optimization hook:
    /// the default drops the buffer, and implementations must likewise
    /// drop it (never block) when no sender is ready to take it.
    fn recycle(&self, _keys: Vec<KeyId>) {}
}

/// Sending half of a worker → aggregator channel. Cloned once per worker.
pub trait PartialSender<P: Send + 'static>: Send + Clone + 'static {
    /// Blocks until there is room, then enqueues `message`.
    fn send(&self, message: PartialWindow<P>) -> Result<(), ChannelClosed>;
}

/// Receiving half of a worker → aggregator channel.
pub trait PartialReceiver<P: Send + 'static>: Send + 'static {
    /// Blocks until at least one message is available, then appends every
    /// queued message to `out` and returns how many were appended. Reports
    /// [`RecvError::Closed`] once all senders are gone and the queue is
    /// empty, or [`RecvError::Transport`] when a peer connection failed
    /// mid-stream (survivable: keep calling for the healthy connections).
    fn recv_batch(&self, out: &mut Vec<PartialWindow<P>>) -> Result<usize, RecvError>;
}

/// Sending half of a worker → source feedback channel. Cloned once per
/// worker; workers drop their clones after finalizing their last window,
/// which is how sources learn no further replay can be requested.
pub trait FeedbackSender: Send + Clone + 'static {
    /// Blocks until there is room, then enqueues `request`.
    fn send(&self, request: ReplayRequest) -> Result<(), ChannelClosed>;
}

/// Receiving half of a worker → source feedback channel (one per source).
pub trait FeedbackReceiver: Send + 'static {
    /// Returns a pending request without blocking (`Ok(None)` when the
    /// channel is momentarily empty). Sources poll this between batches so
    /// that a worker blocked on recovery cannot deadlock against a source
    /// blocked on a full tuple queue.
    fn try_recv(&self) -> Result<Option<ReplayRequest>, ChannelClosed>;

    /// Blocks until a request arrives. Reports [`ChannelClosed`] once every
    /// worker has dropped its sender and the queue is empty — the source's
    /// signal that the run is over.
    fn recv(&self) -> Result<ReplayRequest, ChannelClosed>;
}

/// A factory of channel endpoints for the topology's hops, parameterized by
/// the aggregate partial type `P` that crosses the worker → aggregator hop.
pub trait Transport<P: Send + 'static> {
    /// Source → worker sender handle (shared by all sources).
    type TupleTx: TupleSender;
    /// Source → worker receiver handle (one per worker).
    type TupleRx: TupleReceiver;
    /// Worker → aggregator sender handle (shared by all workers).
    type PartialTx: PartialSender<P>;
    /// Worker → aggregator receiver handle (one per aggregator).
    type PartialRx: PartialReceiver<P>;
    /// Worker → source feedback sender handle (shared by all workers).
    type FeedbackTx: FeedbackSender;
    /// Worker → source feedback receiver handle (one per source).
    type FeedbackRx: FeedbackReceiver;

    /// Creates one source → worker channel per worker, each buffering at
    /// most `capacity_batches` in-flight messages.
    fn tuple_channels(
        &self,
        workers: usize,
        capacity_batches: usize,
    ) -> (Vec<Self::TupleTx>, Vec<Self::TupleRx>);

    /// Creates one worker → aggregator channel per aggregator, each
    /// buffering at most `capacity_messages` in-flight partials.
    fn partial_channels(
        &self,
        aggregators: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::PartialTx>, Vec<Self::PartialRx>);

    /// Creates one worker → source feedback channel per source, each
    /// buffering at most `capacity_messages` in-flight replay requests.
    fn feedback_channels(
        &self,
        sources: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::FeedbackTx>, Vec<Self::FeedbackRx>);

    /// The core-pinning policy stage threads should apply, or `None` (the
    /// default) to leave placement to the OS scheduler. Only transports
    /// whose performance depends on stable producer/consumer cache affinity
    /// (the SPSC backend) opt in.
    fn core_pinning(
        &self,
        _sources: usize,
        _workers: usize,
        _aggregators: usize,
    ) -> Option<CorePinning> {
        None
    }
}

/// Which stage a topology thread runs — the input to [`CorePinning`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageRole {
    /// A source thread (index within the sources).
    Source,
    /// A worker thread (index within the spawned workers).
    Worker,
    /// An aggregator thread (index within the aggregator shards).
    Aggregator,
}

/// A deterministic stage-thread → core assignment, applied best-effort by
/// each stage thread at startup via [`CorePinning::pin_current_thread`].
///
/// Slots are laid out workers-first — workers are the engine's bottleneck
/// stage, so when threads outnumber cores it is the sources and aggregators
/// that double up — and mapped round-robin onto the machine's cores:
/// worker `i` → slot `i`, source `j` → slot `workers + j`, aggregator `k` →
/// slot `workers + sources + k`, each pinned to `slot % cores`.
#[derive(Debug, Clone, Copy)]
pub struct CorePinning {
    sources: usize,
    workers: usize,
    cores: usize,
}

impl CorePinning {
    /// Builds the assignment for a topology of the given stage widths,
    /// reading the core count from the OS.
    pub fn new(sources: usize, workers: usize, _aggregators: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        CorePinning {
            sources,
            workers,
            cores,
        }
    }

    /// The core the thread running stage `role` instance `index` pins to.
    pub fn core_for(&self, role: StageRole, index: usize) -> usize {
        let slot = match role {
            StageRole::Worker => index,
            StageRole::Source => self.workers + index,
            StageRole::Aggregator => self.workers + self.sources + index,
        };
        slot % self.cores
    }

    /// Pins the calling thread to its assigned core. Best-effort: on
    /// unsupported platforms, or if the affinity call fails (cgroup cpuset
    /// restrictions, exotic kernels), the thread simply runs unpinned —
    /// correctness never depends on placement.
    pub fn pin_current_thread(&self, role: StageRole, index: usize) {
        affinity::pin_to_core(self.core_for(role, index));
    }
}

#[cfg(target_os = "linux")]
mod affinity {
    // Raw `sched_setaffinity(2)` — declared directly against the libc the
    // standard library already links, so no new dependency is needed.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub fn pin_to_core(core: usize) {
        // 16 × 64 bits covers 1024 CPUs, the kernel's usual CONFIG_NR_CPUS
        // ceiling; pinning is skipped (not truncated) beyond that.
        let mut mask = [0u64; 16];
        let (word, bit) = (core / 64, core % 64);
        if word >= mask.len() {
            return;
        }
        mask[word] = 1u64 << bit;
        // SAFETY: pid 0 targets the calling thread; the mask pointer and
        // length describe a live, correctly sized local buffer. The call
        // has no memory effects beyond reading the mask.
        let rc = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        // Best-effort by design: a failure (e.g. a cpuset excluding the
        // chosen core) leaves the thread unpinned, which is always safe.
        let _ = rc;
    }
}

#[cfg(not(target_os = "linux"))]
mod affinity {
    pub fn pin_to_core(_core: usize) {}
}

/// Converts the configured queue capacity (in tuples) into channel slots (in
/// batches), rounding up. The floor of two keeps the pipeline
/// double-buffered — one batch being drained while the next is in flight —
/// even when the configured capacity is smaller than a single batch; a floor
/// of one would serialize source and worker on the same hand-off.
///
/// Both the in-process and networked backends size their queues through this
/// one function, so `queue_capacity`/`batch_size` mean the same thing on
/// every backend.
pub fn capacity_in_batches(queue_capacity: usize, batch_size: usize) -> usize {
    queue_capacity.div_ceil(batch_size).max(2)
}

/// Channel slots for a worker → aggregator channel: those channels carry one
/// partial per closed window per worker, so a couple of windows' worth of
/// slots per worker is plenty of double-buffering.
pub fn partial_channel_capacity(spawned_workers: usize) -> usize {
    spawned_workers * 2 + 4
}

/// Channel slots for a worker → source feedback channel: a worker has at
/// most one outstanding replay request per source per recovery, so one slot
/// per worker plus headroom never blocks a recovering worker.
pub fn feedback_channel_capacity(spawned_workers: usize) -> usize {
    spawned_workers + 2
}

/// The in-process transport: bounded crossbeam channels, exactly the
/// engine's original plumbing. This is the reference backend every other
/// transport is differentially tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProc;

impl TupleSender for Sender<SourceMessage> {
    fn send(&self, message: SourceMessage) -> Result<(), ChannelClosed> {
        Sender::send(self, message).map_err(|_| ChannelClosed)
    }

    fn queue_depth_hint(&self) -> Option<(usize, usize)> {
        Some((Sender::len(self), Sender::capacity(self).unwrap_or(0)))
    }
}

impl TupleReceiver for Receiver<SourceMessage> {
    fn recv_batch(&self, out: &mut Vec<SourceMessage>) -> Result<usize, RecvError> {
        Receiver::recv_batch(self, out, usize::MAX).map_err(|_| RecvError::Closed)
    }
}

impl<P: Send + 'static> PartialSender<P> for Sender<PartialWindow<P>> {
    fn send(&self, message: PartialWindow<P>) -> Result<(), ChannelClosed> {
        Sender::send(self, message).map_err(|_| ChannelClosed)
    }
}

impl<P: Send + 'static> PartialReceiver<P> for Receiver<PartialWindow<P>> {
    fn recv_batch(&self, out: &mut Vec<PartialWindow<P>>) -> Result<usize, RecvError> {
        Receiver::recv_batch(self, out, usize::MAX).map_err(|_| RecvError::Closed)
    }
}

impl FeedbackSender for Sender<ReplayRequest> {
    fn send(&self, request: ReplayRequest) -> Result<(), ChannelClosed> {
        Sender::send(self, request).map_err(|_| ChannelClosed)
    }
}

impl FeedbackReceiver for Receiver<ReplayRequest> {
    fn try_recv(&self) -> Result<Option<ReplayRequest>, ChannelClosed> {
        match Receiver::try_recv(self) {
            Ok(request) => Ok(Some(request)),
            Err(crossbeam_channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam_channel::TryRecvError::Disconnected) => Err(ChannelClosed),
        }
    }

    fn recv(&self) -> Result<ReplayRequest, ChannelClosed> {
        Receiver::recv(self).map_err(|_| ChannelClosed)
    }
}

impl<P: Send + 'static> Transport<P> for InProc {
    type TupleTx = Sender<SourceMessage>;
    type TupleRx = Receiver<SourceMessage>;
    type PartialTx = Sender<PartialWindow<P>>;
    type PartialRx = Receiver<PartialWindow<P>>;
    type FeedbackTx = Sender<ReplayRequest>;
    type FeedbackRx = Receiver<ReplayRequest>;

    fn tuple_channels(
        &self,
        workers: usize,
        capacity_batches: usize,
    ) -> (Vec<Self::TupleTx>, Vec<Self::TupleRx>) {
        (0..workers)
            .map(|_| bounded::<SourceMessage>(capacity_batches))
            .unzip()
    }

    fn partial_channels(
        &self,
        aggregators: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::PartialTx>, Vec<Self::PartialRx>) {
        (0..aggregators)
            .map(|_| bounded::<PartialWindow<P>>(capacity_messages))
            .unzip()
    }

    fn feedback_channels(
        &self,
        sources: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::FeedbackTx>, Vec<Self::FeedbackRx>) {
        (0..sources)
            .map(|_| bounded::<ReplayRequest>(capacity_messages))
            .unzip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversion_rounds_up_with_a_floor_of_two() {
        assert_eq!(capacity_in_batches(1_024, 256), 4);
        assert_eq!(capacity_in_batches(1_000, 256), 4);
        assert_eq!(capacity_in_batches(100, 256), 2);
        assert_eq!(capacity_in_batches(1, 1), 2);
        assert_eq!(capacity_in_batches(1_024, 1), 1_024);
    }

    #[test]
    fn capacity_conversion_handles_capacity_smaller_than_batch() {
        // Any capacity strictly below one batch still yields the
        // double-buffering floor, never zero or one slots.
        for capacity in 1..256 {
            assert_eq!(capacity_in_batches(capacity, 256), 2, "capacity {capacity}");
        }
    }

    #[test]
    fn capacity_conversion_of_zero_capacity_is_the_floor() {
        assert_eq!(capacity_in_batches(0, 1), 2);
        assert_eq!(capacity_in_batches(0, 256), 2);
        assert_eq!(capacity_in_batches(0, usize::MAX), 2);
    }

    #[test]
    fn capacity_conversion_exact_multiples_do_not_round() {
        assert_eq!(capacity_in_batches(256, 256), 2, "one batch hits the floor");
        assert_eq!(capacity_in_batches(512, 256), 2);
        assert_eq!(capacity_in_batches(768, 256), 3);
        assert_eq!(capacity_in_batches(2_560, 256), 10);
        // One tuple past an exact multiple buys a whole extra slot.
        assert_eq!(capacity_in_batches(769, 256), 4);
    }

    #[test]
    #[should_panic]
    fn capacity_conversion_rejects_zero_batch_size() {
        let _ = capacity_in_batches(1_024, 0);
    }

    #[test]
    fn inproc_channels_disconnect_when_senders_drop() {
        // Fully qualified: the crossbeam handles also have inherent
        // `send`/`recv_batch` methods, and it is the trait surface under
        // test here.
        let transport = InProc;
        let (txs, rxs) = Transport::<u64>::tuple_channels(&transport, 2, 4);
        assert_eq!(txs.len(), 2);
        TupleSender::send(
            &txs[0],
            SourceMessage::CloseWindow {
                window: 3,
                source: 0,
                seq: 9,
            },
        )
        .unwrap();
        drop(txs);
        let mut out = Vec::new();
        assert_eq!(TupleReceiver::recv_batch(&rxs[0], &mut out), Ok(1));
        assert!(matches!(
            out[0],
            SourceMessage::CloseWindow {
                window: 3,
                source: 0,
                seq: 9
            }
        ));
        assert_eq!(out[0].source_seq(), (0, 9));
        assert_eq!(
            TupleReceiver::recv_batch(&rxs[0], &mut out),
            Err(RecvError::Closed)
        );
        assert_eq!(
            TupleReceiver::recv_batch(&rxs[1], &mut out),
            Err(RecvError::Closed)
        );
    }

    #[test]
    fn inproc_partial_channels_round_trip() {
        let transport = InProc;
        let (txs, rxs) = Transport::<u64>::partial_channels(&transport, 1, 4);
        PartialSender::send(
            &txs[0],
            PartialWindow {
                window: 7,
                worker: 2,
                partial: 99u64,
                closed_at: Instant::now(),
            },
        )
        .unwrap();
        drop(txs);
        let mut out = Vec::new();
        assert_eq!(PartialReceiver::recv_batch(&rxs[0], &mut out), Ok(1));
        assert_eq!(out[0].window, 7);
        assert_eq!(out[0].worker, 2);
        assert_eq!(out[0].partial, 99);
    }

    #[test]
    fn inproc_feedback_channels_poll_and_block() {
        let transport = InProc;
        let (txs, rxs) = Transport::<u64>::feedback_channels(&transport, 2, 4);
        assert_eq!(
            FeedbackReceiver::try_recv(&rxs[0]),
            Ok(None),
            "empty but connected polls as None"
        );
        let request = ReplayRequest {
            worker: 1,
            from_seq: 17,
        };
        FeedbackSender::send(&txs[0], request).unwrap();
        assert_eq!(FeedbackReceiver::try_recv(&rxs[0]), Ok(Some(request)));
        FeedbackSender::send(&txs[1], request).unwrap();
        assert_eq!(FeedbackReceiver::recv(&rxs[1]), Ok(request));
        drop(txs);
        assert_eq!(FeedbackReceiver::try_recv(&rxs[0]), Err(ChannelClosed));
        assert_eq!(FeedbackReceiver::recv(&rxs[1]), Err(ChannelClosed));
    }
}
