//! The engine's pluggable transport layer.
//!
//! The topology has exactly three kinds of hop:
//!
//! 1. **source → worker tuple batches** ([`TupleBatch`]) — the hot path,
//! 2. **source → worker punctuation** ([`SourceMessage::CloseWindow`]) —
//!    the markers that close tuple-count windows,
//! 3. **worker → aggregator partials** ([`PartialWindow`]) — one finalized
//!    per-window shard slice per worker per aggregator.
//!
//! A [`Transport`] supplies the channel endpoints for those hops. The run
//! loop in [`crate::topology`] is generic over it, so the *same* phased
//! source/worker/aggregator code drives both the in-process crossbeam
//! backend ([`InProc`], the default — bit-for-bit the pre-transport
//! behaviour) and networked backends such as the TCP transport in the
//! `slb-net` crate. Routing, windowing, and aggregation are transport-blind
//! by construction; the cross-backend differential suite turns that claim
//! into an exact equality check on merged windowed counts.
//!
//! ## Semantics every transport must provide
//!
//! * **FIFO per sender per channel.** The punctuation protocol relies on a
//!   worker seeing every tuple a source routed to it for window `w` before
//!   that source's `CloseWindow { w }` marker. Messages from *different*
//!   senders may interleave arbitrarily.
//! * **Bounded buffering.** `tuple_channels` receives the queue capacity in
//!   batches (derived from `queue_capacity` and `batch_size` via
//!   [`capacity_in_batches`] — the single place that conversion lives);
//!   senders must block once the receiver's queue is full so that
//!   back-pressure reaches the sources, which is what makes the most loaded
//!   worker the throughput bottleneck.
//! * **Disconnect on drop.** When every sender handle for a channel has been
//!   dropped, the receiver's `recv_batch` must drain the remaining messages
//!   and then report [`ChannelClosed`] — that is how the stages terminate.

use std::time::Instant;

use crossbeam_channel::{bounded, Receiver, Sender};
use slb_workloads::KeyId;

use crate::windows::WindowId;

/// A batch of tuples in flight to one worker: the keys, the window they all
/// belong to (sources never let a batch span a boundary), and the single
/// timestamp taken when the batch's first tuple was buffered.
pub struct TupleBatch {
    /// The routed keys, in source emission order.
    pub keys: Vec<KeyId>,
    /// The window every key in the batch belongs to.
    pub window: WindowId,
    /// When the batch's first tuple was buffered at the source.
    pub emitted_at: Instant,
}

/// One message on a source → worker channel.
pub enum SourceMessage {
    /// A batch of same-window tuples.
    Batch(TupleBatch),
    /// Punctuation: the sending source has emitted every tuple it will ever
    /// emit for `window` (and has flushed the batches carrying them).
    CloseWindow {
        /// The window the sending source has finished.
        window: WindowId,
    },
}

/// One worker's finalized partial aggregate for one window, sliced to one
/// aggregator shard's key range.
pub struct PartialWindow<P> {
    /// The window the partial belongs to.
    pub window: WindowId,
    /// The shard slice of the worker's partial aggregate.
    pub partial: P,
    /// When the worker finalized the window (all close markers collected).
    pub closed_at: Instant,
}

/// The error every transport operation reports once the peer is gone: all
/// receivers dropped (for senders) or all senders dropped and the queue
/// drained (for receivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelClosed;

impl std::fmt::Display for ChannelClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("transport channel closed")
    }
}

impl std::error::Error for ChannelClosed {}

/// Sending half of a source → worker channel. Cloned once per source; the
/// channel disconnects when the last clone drops.
pub trait TupleSender: Send + Clone + 'static {
    /// Blocks until there is room, then enqueues `message`.
    fn send(&self, message: SourceMessage) -> Result<(), ChannelClosed>;
}

/// Receiving half of a source → worker channel.
pub trait TupleReceiver: Send + 'static {
    /// Blocks until at least one message is available, then appends every
    /// queued message to `out` and returns how many were appended. Reports
    /// [`ChannelClosed`] once all senders are gone and the queue is empty.
    fn recv_batch(&self, out: &mut Vec<SourceMessage>) -> Result<usize, ChannelClosed>;
}

/// Sending half of a worker → aggregator channel. Cloned once per worker.
pub trait PartialSender<P: Send + 'static>: Send + Clone + 'static {
    /// Blocks until there is room, then enqueues `message`.
    fn send(&self, message: PartialWindow<P>) -> Result<(), ChannelClosed>;
}

/// Receiving half of a worker → aggregator channel.
pub trait PartialReceiver<P: Send + 'static>: Send + 'static {
    /// Blocks until at least one message is available, then appends every
    /// queued message to `out` and returns how many were appended. Reports
    /// [`ChannelClosed`] once all senders are gone and the queue is empty.
    fn recv_batch(&self, out: &mut Vec<PartialWindow<P>>) -> Result<usize, ChannelClosed>;
}

/// A factory of channel endpoints for the topology's hops, parameterized by
/// the aggregate partial type `P` that crosses the worker → aggregator hop.
pub trait Transport<P: Send + 'static> {
    /// Source → worker sender handle (shared by all sources).
    type TupleTx: TupleSender;
    /// Source → worker receiver handle (one per worker).
    type TupleRx: TupleReceiver;
    /// Worker → aggregator sender handle (shared by all workers).
    type PartialTx: PartialSender<P>;
    /// Worker → aggregator receiver handle (one per aggregator).
    type PartialRx: PartialReceiver<P>;

    /// Creates one source → worker channel per worker, each buffering at
    /// most `capacity_batches` in-flight messages.
    fn tuple_channels(
        &self,
        workers: usize,
        capacity_batches: usize,
    ) -> (Vec<Self::TupleTx>, Vec<Self::TupleRx>);

    /// Creates one worker → aggregator channel per aggregator, each
    /// buffering at most `capacity_messages` in-flight partials.
    fn partial_channels(
        &self,
        aggregators: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::PartialTx>, Vec<Self::PartialRx>);
}

/// Converts the configured queue capacity (in tuples) into channel slots (in
/// batches), rounding up. The floor of two keeps the pipeline
/// double-buffered — one batch being drained while the next is in flight —
/// even when the configured capacity is smaller than a single batch; a floor
/// of one would serialize source and worker on the same hand-off.
///
/// Both the in-process and networked backends size their queues through this
/// one function, so `queue_capacity`/`batch_size` mean the same thing on
/// every backend.
pub fn capacity_in_batches(queue_capacity: usize, batch_size: usize) -> usize {
    queue_capacity.div_ceil(batch_size).max(2)
}

/// Channel slots for a worker → aggregator channel: those channels carry one
/// partial per closed window per worker, so a couple of windows' worth of
/// slots per worker is plenty of double-buffering.
pub fn partial_channel_capacity(spawned_workers: usize) -> usize {
    spawned_workers * 2 + 4
}

/// The in-process transport: bounded crossbeam channels, exactly the
/// engine's original plumbing. This is the reference backend every other
/// transport is differentially tested against.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProc;

impl TupleSender for Sender<SourceMessage> {
    fn send(&self, message: SourceMessage) -> Result<(), ChannelClosed> {
        Sender::send(self, message).map_err(|_| ChannelClosed)
    }
}

impl TupleReceiver for Receiver<SourceMessage> {
    fn recv_batch(&self, out: &mut Vec<SourceMessage>) -> Result<usize, ChannelClosed> {
        Receiver::recv_batch(self, out, usize::MAX).map_err(|_| ChannelClosed)
    }
}

impl<P: Send + 'static> PartialSender<P> for Sender<PartialWindow<P>> {
    fn send(&self, message: PartialWindow<P>) -> Result<(), ChannelClosed> {
        Sender::send(self, message).map_err(|_| ChannelClosed)
    }
}

impl<P: Send + 'static> PartialReceiver<P> for Receiver<PartialWindow<P>> {
    fn recv_batch(&self, out: &mut Vec<PartialWindow<P>>) -> Result<usize, ChannelClosed> {
        Receiver::recv_batch(self, out, usize::MAX).map_err(|_| ChannelClosed)
    }
}

impl<P: Send + 'static> Transport<P> for InProc {
    type TupleTx = Sender<SourceMessage>;
    type TupleRx = Receiver<SourceMessage>;
    type PartialTx = Sender<PartialWindow<P>>;
    type PartialRx = Receiver<PartialWindow<P>>;

    fn tuple_channels(
        &self,
        workers: usize,
        capacity_batches: usize,
    ) -> (Vec<Self::TupleTx>, Vec<Self::TupleRx>) {
        (0..workers)
            .map(|_| bounded::<SourceMessage>(capacity_batches))
            .unzip()
    }

    fn partial_channels(
        &self,
        aggregators: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::PartialTx>, Vec<Self::PartialRx>) {
        (0..aggregators)
            .map(|_| bounded::<PartialWindow<P>>(capacity_messages))
            .unzip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_conversion_rounds_up_with_a_floor_of_two() {
        assert_eq!(capacity_in_batches(1_024, 256), 4);
        assert_eq!(capacity_in_batches(1_000, 256), 4);
        assert_eq!(capacity_in_batches(100, 256), 2);
        assert_eq!(capacity_in_batches(1, 1), 2);
        assert_eq!(capacity_in_batches(1_024, 1), 1_024);
    }

    #[test]
    fn inproc_channels_disconnect_when_senders_drop() {
        // Fully qualified: the crossbeam handles also have inherent
        // `send`/`recv_batch` methods, and it is the trait surface under
        // test here.
        let transport = InProc;
        let (txs, rxs) = Transport::<u64>::tuple_channels(&transport, 2, 4);
        assert_eq!(txs.len(), 2);
        TupleSender::send(&txs[0], SourceMessage::CloseWindow { window: 3 }).unwrap();
        drop(txs);
        let mut out = Vec::new();
        assert_eq!(TupleReceiver::recv_batch(&rxs[0], &mut out), Ok(1));
        assert!(matches!(out[0], SourceMessage::CloseWindow { window: 3 }));
        assert_eq!(
            TupleReceiver::recv_batch(&rxs[0], &mut out),
            Err(ChannelClosed)
        );
        assert_eq!(
            TupleReceiver::recv_batch(&rxs[1], &mut out),
            Err(ChannelClosed)
        );
    }

    #[test]
    fn inproc_partial_channels_round_trip() {
        let transport = InProc;
        let (txs, rxs) = Transport::<u64>::partial_channels(&transport, 1, 4);
        PartialSender::send(
            &txs[0],
            PartialWindow {
                window: 7,
                partial: 99u64,
                closed_at: Instant::now(),
            },
        )
        .unwrap();
        drop(txs);
        let mut out = Vec::new();
        assert_eq!(PartialReceiver::recv_batch(&rxs[0], &mut out), Ok(1));
        assert_eq!(out[0].window, 7);
        assert_eq!(out[0].partial, 99);
    }
}
