//! The source → worker topology and its runner.
//!
//! A [`Topology`] mirrors the paper's Storm application: a set of source
//! threads generates a keyed stream and routes every tuple through the
//! grouping scheme under study; a set of worker threads consumes the tuples
//! from bounded input queues, performs a fixed amount of CPU work per tuple
//! (emulating the aggregation operator), and keeps per-key state. Sources
//! block when a worker's queue is full, which is exactly the back-pressure
//! behaviour that makes the most loaded worker the throughput bottleneck.
//!
//! ## Batched transport
//!
//! Tuples move through the channels in [`EngineConfig::batch_size`]-sized
//! chunks, not one at a time. Sources route a buffer of keys with one
//! `route_batch` call, append each key to its destination worker's pending
//! batch, and ship the batch when it fills; each batch carries a single
//! emit timestamp, taken when its first tuple was buffered so that recorded
//! latency includes batch-fill wait. Workers drain whole runs of batches
//! under one lock acquisition via the channel's `recv_batch` path and
//! record one latency value per batch (latency is therefore quantized to
//! batch granularity, and conservatively so — per-tuple wait is never
//! understated).
//! Routing decisions are bit-for-bit identical to the tuple-at-a-time path
//! (see the `batch_equivalence` property tests in `slb-core`), so the
//! grouping-scheme comparison is unchanged while the per-tuple transport
//! cost (two Mutex+Condvar round-trips and two `Instant::now()` calls per
//! tuple) drops by roughly the batch size.

use std::thread;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

use slb_core::{build_partitioner, PartitionConfig, PartitionerKind};
use slb_workloads::zipf::ZipfGenerator;
use slb_workloads::{KeyId, KeyStream};

use crate::latency::{LatencySummary, LatencyTracker};

/// Configuration of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// Number of source threads (the paper uses 48).
    pub sources: usize,
    /// Number of worker threads (the paper uses 80).
    pub workers: usize,
    /// Number of distinct keys in the synthetic workload (paper: 10⁴).
    pub keys: usize,
    /// Zipf exponent of the workload (paper: 1.4, 1.7, 2.0).
    pub skew: f64,
    /// Total number of messages across all sources (paper: 2×10⁶).
    pub messages: u64,
    /// Emulated CPU time per tuple at the worker, in microseconds
    /// (the paper uses 1000 µs = 1 ms; the default here is smaller so the
    /// full figure suite runs in minutes).
    pub service_time_us: u64,
    /// Capacity of each worker's input queue, in tuples.
    pub queue_capacity: usize,
    /// Seed for the workload and the hash functions.
    pub seed: u64,
    /// Number of tuples carried per channel message. Batch 1 reproduces the
    /// original tuple-at-a-time transport; the default of 256 amortizes the
    /// channel synchronization and timestamping cost across the batch.
    pub batch_size: usize,
}

/// Default number of tuples per transported batch.
pub const DEFAULT_BATCH_SIZE: usize = 256;

impl EngineConfig {
    /// A laptop-friendly configuration for the given scheme and skew:
    /// 4 sources, 8 workers, 10⁴ keys, 200k messages, 50 µs service time.
    pub fn laptop(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 4,
            workers: 8,
            keys: 10_000,
            skew,
            messages: 200_000,
            service_time_us: 50,
            queue_capacity: 1_024,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// The paper's full-scale parameters (Figures 13–14): 48 sources,
    /// 80 workers, 10⁴ keys, 2×10⁶ messages, 1 ms of work per tuple.
    pub fn paper(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 48,
            workers: 80,
            keys: 10_000,
            skew,
            messages: 2_000_000,
            service_time_us: 1_000,
            queue_capacity: 1_024,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// A tiny smoke-test configuration (a couple of seconds). The service
    /// time is chosen so that the workers — not the sources — are the
    /// bottleneck, as in the paper's saturated-cluster setup; otherwise the
    /// grouping scheme would have no effect on throughput or latency.
    pub fn smoke(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 2,
            workers: 4,
            keys: 1_000,
            skew,
            messages: 20_000,
            service_time_us: 25,
            queue_capacity: 128,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }

    /// Overrides the number of messages.
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Overrides the per-tuple service time (microseconds).
    pub fn with_service_time_us(mut self, us: u64) -> Self {
        self.service_time_us = us;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the transport batch size (tuples per channel message).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }
}

/// A batch of tuples in flight to one worker: the keys plus the single
/// timestamp taken when the batch was shipped.
struct TupleBatch {
    keys: Vec<KeyId>,
    emitted_at: Instant,
}

/// Outcome of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineResult {
    /// Scheme symbol.
    pub scheme: String,
    /// Zipf exponent of the workload.
    pub skew: f64,
    /// Messages processed (across all workers).
    pub processed: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Throughput in events per second.
    pub throughput_eps: f64,
    /// End-to-end latency summary.
    pub latency: LatencySummary,
    /// Per-worker processed-message counts (for imbalance auditing).
    pub worker_counts: Vec<u64>,
    /// Per-worker number of distinct keys held in state (memory footprint).
    pub worker_state_keys: Vec<u64>,
    /// Imbalance of the processed counts.
    pub imbalance: f64,
}

impl EngineResult {
    /// Total distinct `(key, worker)` state replicas across workers.
    pub fn total_state_replicas(&self) -> u64 {
        self.worker_state_keys.iter().sum()
    }
}

/// The runnable topology.
pub struct Topology {
    config: EngineConfig,
}

impl Topology {
    /// Creates a topology from a configuration.
    ///
    /// # Panics
    /// Panics if any structural parameter is zero.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.sources > 0, "need at least one source");
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.keys > 0, "need at least one key");
        assert!(config.queue_capacity > 0, "queues need capacity");
        assert!(config.batch_size > 0, "batches need at least one tuple");
        Self { config }
    }

    /// Runs the topology to completion and returns the measurements.
    pub fn run(&self) -> EngineResult {
        let cfg = &self.config;
        let batch_size = cfg.batch_size;
        // The queue capacity is configured in tuples; the channels carry
        // batches, so convert (rounding up). The floor of two keeps the
        // pipeline double-buffered — one batch being drained while the next
        // is in flight — even when the configured capacity is smaller than a
        // single batch; a floor of one serializes source and worker on the
        // same condvar hand-off.
        let capacity_batches = cfg.queue_capacity.div_ceil(batch_size).max(2);
        let (senders, receivers): (Vec<Sender<TupleBatch>>, Vec<Receiver<TupleBatch>>) = (0..cfg
            .workers)
            .map(|_| bounded::<TupleBatch>(capacity_batches))
            .unzip();

        let start = Instant::now();

        // Worker threads: drain whole runs of batches under one lock
        // acquisition, spin for the aggregate service time, update per-key
        // state, record one latency value per batch.
        let mut worker_handles = Vec::with_capacity(cfg.workers);
        for receiver in receivers {
            let service_time = Duration::from_micros(cfg.service_time_us);
            worker_handles.push(thread::spawn(move || {
                let mut processed = 0u64;
                let mut latencies = LatencyTracker::with_capacity(4_096);
                let mut state: std::collections::HashMap<KeyId, u64> =
                    std::collections::HashMap::new();
                let mut drained: Vec<TupleBatch> = Vec::new();
                while receiver.recv_batch(&mut drained, usize::MAX).is_ok() {
                    for batch in drained.drain(..) {
                        let n = batch.keys.len() as u64;
                        // Emulate the aggregation work with one busy-wait for
                        // the whole batch (n tuples' worth of service time):
                        // sleeping is far too coarse at microsecond
                        // granularity, and a per-tuple deadline would put two
                        // `Instant::now()` calls back on the per-tuple path.
                        if !service_time.is_zero() {
                            let until = Instant::now() + service_time * n as u32;
                            while Instant::now() < until {
                                std::hint::spin_loop();
                            }
                        }
                        for key in &batch.keys {
                            *state.entry(*key).or_insert(0) += 1;
                        }
                        let batch_latency_us = batch.emitted_at.elapsed().as_micros() as u64;
                        latencies.record_many_us(batch_latency_us, n);
                        processed += n;
                    }
                }
                (processed, latencies, state.len() as u64)
            }));
        }

        // Source threads: generate and route a buffer of keys at a time,
        // accumulate per-worker batches, ship each batch with a single
        // timestamp when it fills (blocking on full queues).
        let per_source = cfg.messages / cfg.sources as u64;
        let mut source_handles = Vec::with_capacity(cfg.sources);
        for source_idx in 0..cfg.sources {
            let senders = senders.clone();
            let kind = cfg.kind;
            let partition = PartitionConfig::new(cfg.workers).with_seed(cfg.seed);
            let keys = cfg.keys;
            let skew = cfg.skew;
            let workers = cfg.workers;
            // Each source generates an independent slice of the workload.
            let stream_seed = cfg.seed.wrapping_add(1 + source_idx as u64);
            source_handles.push(thread::spawn(move || {
                let mut partitioner = build_partitioner::<KeyId>(kind, &partition);
                let mut stream = ZipfGenerator::with_limit(keys, skew, stream_seed, per_source);
                let mut keybuf: Vec<KeyId> = Vec::with_capacity(batch_size);
                let mut routebuf: Vec<usize> = Vec::with_capacity(batch_size);
                let mut pending: Vec<Vec<KeyId>> = (0..workers)
                    .map(|_| Vec::with_capacity(batch_size))
                    .collect();
                // The batch's emit stamp is taken when its FIRST tuple is
                // buffered, not when the batch ships: a tuple's recorded
                // latency must include the time it waits for its batch to
                // fill, otherwise the slowest-filling destinations (exactly
                // the under-loaded workers of a skewed run) would report the
                // smallest latencies. First-push stamping over-approximates
                // for later tuples in the batch; it never understates.
                let mut pending_since: Vec<Instant> = vec![Instant::now(); workers];
                let mut sent = 0u64;
                loop {
                    keybuf.clear();
                    while keybuf.len() < batch_size {
                        match KeyStream::next_key(&mut stream) {
                            Some(key) => keybuf.push(key),
                            None => break,
                        }
                    }
                    if keybuf.is_empty() {
                        break;
                    }
                    partitioner.route_batch(&keybuf, &mut routebuf);
                    for (&key, &worker) in keybuf.iter().zip(&routebuf) {
                        if pending[worker].is_empty() {
                            pending_since[worker] = Instant::now();
                        }
                        pending[worker].push(key);
                        if pending[worker].len() == batch_size {
                            let keys = std::mem::replace(
                                &mut pending[worker],
                                Vec::with_capacity(batch_size),
                            );
                            sent += keys.len() as u64;
                            // A send only fails if the receiver is gone, which
                            // cannot happen before all senders are dropped;
                            // treat it as fatal.
                            senders[worker]
                                .send(TupleBatch {
                                    keys,
                                    emitted_at: pending_since[worker],
                                })
                                .expect("worker queue closed prematurely");
                        }
                    }
                }
                // Flush the partial batches left over at end of stream.
                for (worker, keys) in pending.into_iter().enumerate() {
                    if !keys.is_empty() {
                        sent += keys.len() as u64;
                        senders[worker]
                            .send(TupleBatch {
                                keys,
                                emitted_at: pending_since[worker],
                            })
                            .expect("worker queue closed prematurely");
                    }
                }
                sent
            }));
        }
        // Drop the topology's own copies so workers terminate when sources do.
        drop(senders);

        let mut sent_total = 0u64;
        for h in source_handles {
            sent_total += h.join().expect("source thread panicked");
        }
        let mut processed = 0u64;
        let mut latencies = Vec::with_capacity(cfg.workers);
        let mut worker_counts = Vec::with_capacity(cfg.workers);
        let mut worker_state_keys = Vec::with_capacity(cfg.workers);
        for h in worker_handles {
            let (count, tracker, state_keys) = h.join().expect("worker thread panicked");
            processed += count;
            worker_counts.push(count);
            worker_state_keys.push(state_keys);
            latencies.push(tracker);
        }
        debug_assert_eq!(sent_total, processed, "every sent tuple must be processed");

        let elapsed = start.elapsed().as_secs_f64();
        EngineResult {
            scheme: cfg.kind.symbol().to_string(),
            skew: cfg.skew,
            processed,
            elapsed_secs: elapsed,
            throughput_eps: if elapsed > 0.0 {
                processed as f64 / elapsed
            } else {
                0.0
            },
            latency: LatencyTracker::summarize(&latencies),
            imbalance: slb_core::imbalance(&worker_counts),
            worker_counts,
            worker_state_keys,
        }
    }
}

/// Runs one engine experiment per grouping scheme in `schemes`, all on the
/// same workload, and returns the results in the same order.
pub fn compare_schemes(base: &EngineConfig, schemes: &[PartitionerKind]) -> Vec<EngineResult> {
    schemes
        .iter()
        .map(|&kind| {
            let mut cfg = base.clone();
            cfg.kind = kind;
            Topology::new(cfg).run()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_processes_every_message() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4);
        let result = Topology::new(cfg.clone()).run();
        assert_eq!(
            result.processed,
            (cfg.messages / cfg.sources as u64) * cfg.sources as u64
        );
        assert_eq!(result.worker_counts.len(), cfg.workers);
        assert!(result.throughput_eps > 0.0);
        assert!(result.latency.samples > 0);
        assert_eq!(result.latency.samples, result.processed);
        assert_eq!(result.scheme, "PKG");
    }

    #[test]
    fn key_grouping_keeps_state_compact_but_unbalanced() {
        // Under heavy skew, KG holds each key on exactly one worker (minimal
        // state) but its processed-count imbalance is large compared to SG.
        let kg = Topology::new(EngineConfig::smoke(PartitionerKind::KeyGrouping, 2.0)).run();
        let sg = Topology::new(EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 2.0)).run();
        assert!(kg.imbalance > sg.imbalance);
        assert!(kg.total_state_replicas() <= sg.total_state_replicas());
    }

    #[test]
    fn w_choices_balances_better_than_pkg_under_extreme_skew() {
        let pkg = Topology::new(EngineConfig::smoke(PartitionerKind::Pkg, 2.0)).run();
        let wc = Topology::new(EngineConfig::smoke(PartitionerKind::WChoices, 2.0)).run();
        assert!(
            wc.imbalance <= pkg.imbalance + 1e-9,
            "W-C imbalance {} vs PKG {}",
            wc.imbalance,
            pkg.imbalance
        );
    }

    #[test]
    fn compare_schemes_returns_one_result_per_scheme() {
        let base = EngineConfig::smoke(PartitionerKind::Pkg, 1.4).with_messages(4_000);
        let results = compare_schemes(
            &base,
            &[
                PartitionerKind::KeyGrouping,
                PartitionerKind::ShuffleGrouping,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scheme, "KG");
        assert_eq!(results[1].scheme, "SG");
    }

    #[test]
    fn zero_service_time_is_supported() {
        let cfg = EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 1.0)
            .with_messages(8_000)
            .with_service_time_us(0);
        let r = Topology::new(cfg).run();
        assert_eq!(r.processed, 8_000);
    }

    #[test]
    fn partial_final_batches_are_flushed() {
        // A message count that is not a multiple of the batch size (and a
        // batch size larger than some workers' share) must still deliver
        // every tuple, with samples matching processed.
        for batch in [1usize, 3, 7, 256, 100_000] {
            let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
                .with_messages(10_001)
                .with_service_time_us(0)
                .with_batch_size(batch);
            let sources = cfg.sources as u64;
            let r = Topology::new(cfg).run();
            assert_eq!(r.processed, (10_001 / sources) * sources, "batch={batch}");
            assert_eq!(r.latency.samples, r.processed, "batch={batch}");
        }
    }

    #[test]
    fn batch_size_does_not_change_routing_decisions() {
        // The transport batch size is invisible to the grouping scheme: the
        // per-worker tuple counts and per-worker state footprints must be
        // identical whether tuples travel one at a time or 256 at a time.
        for kind in [
            PartitionerKind::Pkg,
            PartitionerKind::DChoices,
            PartitionerKind::ShuffleGrouping,
        ] {
            let base = EngineConfig::smoke(kind, 1.8)
                .with_messages(12_000)
                .with_service_time_us(0);
            let scalar = Topology::new(base.clone().with_batch_size(1)).run();
            let batched = Topology::new(base.with_batch_size(256)).run();
            assert_eq!(
                scalar.worker_counts, batched.worker_counts,
                "{kind:?} per-worker counts changed with batch size"
            );
            assert_eq!(
                scalar.worker_state_keys, batched.worker_state_keys,
                "{kind:?} per-worker state changed with batch size"
            );
        }
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_panics() {
        let mut cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0);
        cfg.workers = 0;
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn zero_batch_size_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_batch_size(0);
        let _ = Topology::new(cfg);
    }
}
