//! The source → worker → aggregator topology and its phased runner.
//!
//! A [`Topology`] mirrors the paper's Storm application, now with all three
//! operators: a set of source threads generates a keyed stream and routes
//! every tuple through the grouping scheme under study; a set of worker
//! threads consumes the tuples from bounded input queues, performs a fixed
//! amount of CPU work per tuple (the first aggregation phase), and
//! accumulates per-key *partial* window state; a set of aggregator threads —
//! sharded by key hash — merges the workers' partials into the final
//! per-window result. Sources block when a worker's queue is full, which is
//! exactly the back-pressure behaviour that makes the most loaded worker the
//! throughput bottleneck; the aggregator stage is the reason key splitting
//! (PKG, D-Choices, W-Choices) is *sound*: it re-unifies the per-key state
//! the splitting scattered across workers.
//!
//! ## Pluggable transport
//!
//! The run loop is generic over a [`Transport`], the factory of the
//! channels tuples and partials travel through (see [`crate::transport`]).
//! The default is [`InProc`] — bounded crossbeam channels, the engine's
//! original plumbing — and `slb-net` provides a TCP backend that carries the
//! same hops over loopback sockets and across process boundaries. Each stage
//! of the topology is exposed as a standalone function
//! ([`run_source_stage`], [`run_worker_stage`], [`run_aggregator_stage`]) so
//! a multi-process deployment can run exactly the code this in-process
//! runner threads together; [`assemble_result`] merges the stages' reports
//! into an [`EngineResult`] on either side.
//!
//! ## Phased execution
//!
//! The run loop is phased: internally every run is a sequence of *phases*,
//! each fixing the key distribution, arrival pattern, active worker count,
//! and per-worker service-time multipliers. A plain [`EngineConfig`] run is
//! the one-phase special case; a [`ScenarioConfig`] run executes a
//! [`Scenario`] with as many phases as the spec declares. At each phase
//! boundary every source regenerates its partitioner for the phase's worker
//! count ([`slb_core::Partitioner::rescale`]) and switches to the phase's
//! key stream. Worker threads are spawned for the *maximum* worker count up
//! front; phases activate a prefix of them, and inactive workers merely
//! relay window punctuation, so the aggregation invariant ("every worker
//! contributes one partial per window") is preserved across scale-out and
//! scale-in. Phases are aligned to window boundaries by construction (see
//! `slb-workloads::scenario`), so no window ever mixes two routing regimes.
//!
//! ## Batched transport
//!
//! Tuples move through the channels in [`EngineConfig::batch_size`]-sized
//! chunks, not one at a time. Sources route a buffer of keys with one
//! `route_batch` call, append each key to its destination worker's pending
//! batch, and ship the batch when it fills; each batch carries a single
//! emit timestamp, taken when its first tuple was buffered so that recorded
//! latency includes batch-fill wait. Workers drain whole runs of batches
//! under one lock acquisition via the channel's `recv_batch` path and
//! record one latency value per batch (latency is therefore quantized to
//! batch granularity, and conservatively so — per-tuple wait is never
//! understated).
//! Routing decisions are bit-for-bit identical to the tuple-at-a-time path
//! (see the `batch_equivalence` property tests in `slb-core`), so the
//! grouping-scheme comparison is unchanged while the per-tuple transport
//! cost (two Mutex+Condvar round-trips and two `Instant::now()` calls per
//! tuple) drops by roughly the batch size.
//!
//! ## Windows and punctuation
//!
//! Tuples are windowed by count per source sub-stream (see
//! [`crate::windows`]): the tuple at source position `i` belongs to window
//! `i / window_size`. A source never lets a transported batch span a window
//! boundary; when it finishes a window it flushes its in-flight batches and
//! broadcasts a close marker for that window to every worker. A worker that
//! has collected the marker from all sources finalizes its partial for the
//! window, splits it by key hash into one slice per aggregator shard
//! ([`WindowAggregate::shard`]), and ships the slices downstream — also in
//! batches, with one timestamp per partial, so the hot path stays
//! allocation-free. Aggregators merge slices as they arrive and declare a
//! window final once every worker has contributed, counting merges and
//! recording close→merge latency as the second stage's metrics.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use slb_core::{
    build_partitioner, ControllerAction, ControllerConfig, ControllerEvent, ControllerMetrics,
    CountAggregate, ElasticityController, OpenWindowState, PartitionConfig, Partitioner,
    PartitionerKind, PerWindowLoads, PhaseLoadMatrix, SolverMode, WindowAggregate, WirePartial,
    WorkerCheckpoint,
};
use slb_telemetry::{
    sort_canonical, trace_kind, trace_stage, HopStats, HopTelemetry, LogHistogram, TraceBuf,
    TraceEvent,
};
use slb_workloads::{Arrival, KeyId, KeyStream, Scenario};

use crate::fault::{CheckpointStore, ConnectionDrop, FaultPlan};
use crate::latency::{LatencySummary, LatencyTracker, PhaseMetrics, RecoveryMetrics, StageMetrics};
use crate::transport::{
    capacity_in_batches, feedback_channel_capacity, partial_channel_capacity, FeedbackReceiver,
    FeedbackSender, InProc, PartialReceiver, PartialSender, PartialWindow, RecvError,
    ReplayRequest, SourceMessage, StageRole, Transport, TupleBatch, TupleReceiver, TupleSender,
};
use crate::windows::{window_of, WindowId, WindowedRun};

/// Window-boundary snapshots a source keeps for bounded replay. A
/// recovering worker's checkpoint cursor lags the source's emission frontier
/// by at most the worker queue's depth, which a handful of window-boundary
/// snapshots comfortably covers; requests older than the ring fall back to
/// the origin snapshot (replay from the beginning of the stream).
const REPLAY_SNAPSHOT_RING: usize = 8;

/// Configuration of one single-phase engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// Number of source threads (the paper uses 48).
    pub sources: usize,
    /// Number of worker threads (the paper uses 80).
    pub workers: usize,
    /// Number of distinct keys in the synthetic workload (paper: 10⁴).
    pub keys: usize,
    /// Zipf exponent of the workload (paper: 1.4, 1.7, 2.0).
    pub skew: f64,
    /// Total number of messages across all sources (paper: 2×10⁶).
    pub messages: u64,
    /// Emulated CPU time per tuple at the worker, in microseconds
    /// (the paper uses 1000 µs = 1 ms; the default here is smaller so the
    /// full figure suite runs in minutes).
    pub service_time_us: u64,
    /// Capacity of each worker's input queue, in tuples. Every transport
    /// backend derives its buffering from this one knob (see
    /// [`capacity_in_batches`]).
    pub queue_capacity: usize,
    /// Seed for the workload and the hash functions.
    pub seed: u64,
    /// Number of tuples carried per channel message. Batch 1 reproduces the
    /// original tuple-at-a-time transport; the default of 256 amortizes the
    /// channel synchronization and timestamping cost across the batch.
    /// Clamped to `queue_capacity` when resolving the plan so a small
    /// queue bound is honored (a batch larger than the queue could never
    /// be accepted by the bounded channel).
    pub batch_size: usize,
    /// Tuples per window in each source sub-stream (window boundaries are
    /// deterministic: tuple `i` of a source belongs to window
    /// `i / window_size`).
    pub window_size: u64,
    /// Number of aggregator threads; the key space is sharded across them
    /// by key hash so the merge stage scales past one thread.
    pub aggregators: usize,
    /// How head-aware schemes choose `d` (see [`SolverMode`]); `Fixed(d)`
    /// gives the static-`d` baselines the elasticity controller is measured
    /// against. Forced to `External` when a controller is attached.
    pub solver: SolverMode,
    /// Optional elasticity controller stepped at every window boundary
    /// (see [`ControllerConfig`] and docs/ELASTICITY.md). When set, the
    /// controller owns the active worker count within
    /// `[min_workers, max_workers]` and `workers` is only the starting
    /// point; workers are spawned up to `max_workers`.
    pub controller: Option<ControllerConfig>,
}

/// Default number of tuples per transported batch.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Default number of tuples per window in each source sub-stream.
pub const DEFAULT_WINDOW_SIZE: u64 = 4_096;

/// Default number of aggregator shards.
pub const DEFAULT_AGGREGATORS: usize = 2;

/// Default capacity of each worker's input queue, in tuples.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1_024;

impl EngineConfig {
    /// A laptop-friendly configuration for the given scheme and skew:
    /// 4 sources, 8 workers, 10⁴ keys, 200k messages, 50 µs service time.
    pub fn laptop(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 4,
            workers: 8,
            keys: 10_000,
            skew,
            messages: 200_000,
            service_time_us: 50,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: DEFAULT_WINDOW_SIZE,
            aggregators: DEFAULT_AGGREGATORS,
            solver: SolverMode::Online,
            controller: None,
        }
    }

    /// The paper's full-scale parameters (Figures 13–14): 48 sources,
    /// 80 workers, 10⁴ keys, 2×10⁶ messages, 1 ms of work per tuple.
    pub fn paper(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 48,
            workers: 80,
            keys: 10_000,
            skew,
            messages: 2_000_000,
            service_time_us: 1_000,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: 16_384,
            aggregators: 4,
            solver: SolverMode::Online,
            controller: None,
        }
    }

    /// A tiny smoke-test configuration (a couple of seconds). The service
    /// time is chosen so that the workers — not the sources — are the
    /// bottleneck, as in the paper's saturated-cluster setup; otherwise the
    /// grouping scheme would have no effect on throughput or latency.
    pub fn smoke(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 2,
            workers: 4,
            keys: 1_000,
            skew,
            messages: 20_000,
            service_time_us: 25,
            queue_capacity: 128,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: 2_048,
            aggregators: DEFAULT_AGGREGATORS,
            solver: SolverMode::Online,
            controller: None,
        }
    }

    /// Overrides the number of messages.
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Overrides the per-tuple service time (microseconds).
    pub fn with_service_time_us(mut self, us: u64) -> Self {
        self.service_time_us = us;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the transport batch size (tuples per channel message).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the per-worker queue capacity (tuples).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the window size (tuples per window per source sub-stream).
    pub fn with_window_size(mut self, window_size: u64) -> Self {
        self.window_size = window_size;
        self
    }

    /// Overrides the number of aggregator shards.
    pub fn with_aggregators(mut self, aggregators: usize) -> Self {
        self.aggregators = aggregators;
        self
    }

    /// Overrides the solver mode of head-aware schemes; `Fixed(d)` is the
    /// static-`d` baseline the controller is compared against.
    pub fn with_solver(mut self, solver: SolverMode) -> Self {
        self.solver = solver;
        self
    }

    /// Pins head-aware schemes to a constant `d` (sugar for
    /// [`Self::with_solver`] with [`SolverMode::Fixed`]).
    pub fn with_fixed_d(self, d: usize) -> Self {
        self.with_solver(SolverMode::Fixed(d))
    }

    /// Attaches an elasticity controller: it is stepped at every window
    /// boundary of every source and owns the active worker count for the
    /// whole run (workers are spawned up to `controller.max_workers`). The
    /// solver mode becomes [`SolverMode::External`] so the controller is
    /// the single adaptation authority.
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        controller.validate();
        self.controller = Some(controller);
        self
    }

    /// Asserts the structural invariants every run entry point relies on.
    ///
    /// # Panics
    /// Panics if any structural parameter is zero.
    pub fn validate(&self) {
        assert!(self.sources > 0, "need at least one source");
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.keys > 0, "need at least one key");
        assert!(self.queue_capacity > 0, "queues need capacity");
        assert!(self.batch_size > 0, "batches need at least one tuple");
        assert!(self.window_size > 0, "windows need at least one tuple");
        assert!(self.aggregators > 0, "need at least one aggregator");
        if let Some(controller) = &self.controller {
            controller.validate();
        }
    }

    /// Resolves this configuration into the one-phase [`StagePlan`] every
    /// execution backend (threads or processes) runs.
    ///
    /// # Panics
    /// Panics if [`Self::validate`] does.
    pub fn stage_plan(&self) -> StagePlan {
        self.validate();
        let batch_size = effective_batch_size(self.batch_size, self.queue_capacity);
        let per_source = self.messages / self.sources as u64;
        // With a controller attached the spawned universe must cover every
        // worker the controller may ever activate.
        let spawned = match &self.controller {
            Some(c) => self.workers.max(c.max_workers),
            None => self.workers,
        };
        let phase = PhasePlan {
            tuples_per_source: per_source,
            start_window: 0,
            // 0 for a degenerate messages < sources config, matching the
            // run's actual (empty) window set.
            windows: per_source.div_ceil(self.window_size),
            workers: self.workers,
            service: Arc::new(vec![Duration::from_micros(self.service_time_us); spawned]),
            arrival: Arrival::Steady,
        };
        StagePlan {
            kind: self.kind,
            seed: self.seed,
            skew: self.skew,
            sources: self.sources,
            spawned_workers: spawned,
            window_size: self.window_size,
            batch_size,
            queue_capacity: self.queue_capacity,
            aggregators: self.aggregators,
            phase_starts: Arc::new(vec![0]),
            phases: Arc::new(vec![phase]),
            faults: Arc::new(FaultPlan::none()),
            checkpointing: true,
            telemetry: true,
            solver: resolved_solver(self.solver, self.controller.as_ref()),
            controller: self.controller.clone(),
        }
    }
}

/// The solver mode a plan's partitioners actually run with: `External`
/// whenever a controller is attached (it is the single adaptation
/// authority), the configured mode otherwise.
fn resolved_solver(solver: SolverMode, controller: Option<&ControllerConfig>) -> SolverMode {
    if controller.is_some() {
        SolverMode::External
    } else {
        solver
    }
}

/// Configuration of a multi-phase scenario run: the [`Scenario`] supplies
/// the workload, phase lengths, worker counts, and speed multipliers; this
/// struct adds the engine-side knobs (base service time, transport, shards).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// The multi-phase workload and cluster description.
    pub scenario: Scenario,
    /// Base emulated CPU time per tuple, microseconds; each phase's
    /// per-worker multipliers scale it ([`slb_workloads::ScenarioPhase::worker_speed`]).
    pub service_time_us: u64,
    /// Capacity of each worker's input queue, in tuples.
    pub queue_capacity: usize,
    /// Tuples per transported channel message (clamped to `queue_capacity`
    /// when resolving the plan, like [`EngineConfig::batch_size`]).
    pub batch_size: usize,
    /// Number of aggregator shards.
    pub aggregators: usize,
    /// How head-aware schemes choose `d` (see [`SolverMode`]). Forced to
    /// `External` when a controller is attached.
    pub solver: SolverMode,
    /// Optional elasticity controller (see [`EngineConfig::controller`]).
    /// When set, the scenario phases' worker counts are advisory — the
    /// first phase seeds the controller's starting point and the controller
    /// owns the active count from there.
    pub controller: Option<ControllerConfig>,
}

impl ScenarioConfig {
    /// Creates a scenario run configuration with default engine knobs and
    /// zero base service time (pure routing/transport; set a service time to
    /// study saturation behaviour).
    pub fn new(kind: PartitionerKind, scenario: Scenario) -> Self {
        Self {
            kind,
            scenario,
            service_time_us: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            batch_size: DEFAULT_BATCH_SIZE,
            aggregators: DEFAULT_AGGREGATORS,
            solver: SolverMode::Online,
            controller: None,
        }
    }

    /// Overrides the grouping scheme.
    pub fn with_kind(mut self, kind: PartitionerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the base per-tuple service time (microseconds).
    pub fn with_service_time_us(mut self, us: u64) -> Self {
        self.service_time_us = us;
        self
    }

    /// Overrides the per-worker queue capacity (tuples).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the transport batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the number of aggregator shards.
    pub fn with_aggregators(mut self, aggregators: usize) -> Self {
        self.aggregators = aggregators;
        self
    }

    /// Overrides the solver mode of head-aware schemes; `Fixed(d)` is the
    /// static-`d` baseline the controller is compared against.
    pub fn with_solver(mut self, solver: SolverMode) -> Self {
        self.solver = solver;
        self
    }

    /// Pins head-aware schemes to a constant `d` (sugar for
    /// [`Self::with_solver`] with [`SolverMode::Fixed`]).
    pub fn with_fixed_d(self, d: usize) -> Self {
        self.with_solver(SolverMode::Fixed(d))
    }

    /// Attaches an elasticity controller (see
    /// [`EngineConfig::with_controller`]).
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        controller.validate();
        self.controller = Some(controller);
        self
    }

    /// Resolves this configuration into the multi-phase [`StagePlan`] every
    /// execution backend runs.
    ///
    /// # Panics
    /// Panics if the scenario or the engine knobs are invalid.
    pub fn stage_plan(&self) -> StagePlan {
        if let Err(message) = self.scenario.validate() {
            panic!("invalid scenario: {message}");
        }
        assert!(self.queue_capacity > 0, "queues need capacity");
        assert!(self.batch_size > 0, "batches need at least one tuple");
        assert!(self.aggregators > 0, "need at least one aggregator");
        let batch_size = effective_batch_size(self.batch_size, self.queue_capacity);
        let scenario = &self.scenario;
        let base_us = self.service_time_us;
        let spawned = match &self.controller {
            Some(c) => scenario.max_workers().max(c.max_workers),
            None => scenario.max_workers(),
        };
        let phases: Vec<PhasePlan> = scenario
            .phases
            .iter()
            .enumerate()
            .map(|(p, phase)| PhasePlan {
                tuples_per_source: scenario.phase_tuples_per_source(p),
                start_window: scenario.phase_start_window(p),
                windows: phase.windows,
                workers: phase.workers,
                service: Arc::new(
                    (0..spawned)
                        .map(|w| Duration::from_secs_f64(base_us as f64 * phase.speed_of(w) / 1e6))
                        .collect(),
                ),
                arrival: phase.arrival,
            })
            .collect();
        StagePlan {
            kind: self.kind,
            seed: scenario.seed,
            skew: scenario.phases[0].skew,
            sources: scenario.sources,
            spawned_workers: spawned,
            window_size: scenario.window_size,
            batch_size,
            queue_capacity: self.queue_capacity,
            aggregators: self.aggregators,
            phase_starts: Arc::new(phases.iter().map(|p| p.start_window).collect()),
            phases: Arc::new(phases),
            faults: Arc::new(FaultPlan::none()),
            checkpointing: true,
            telemetry: true,
            solver: resolved_solver(self.solver, self.controller.as_ref()),
            controller: self.controller.clone(),
        }
    }

    /// Runs the scenario with the default windowed count aggregation,
    /// discarding the per-window counts.
    ///
    /// # Panics
    /// Panics if the scenario or the engine knobs are invalid.
    pub fn run(&self) -> EngineResult {
        self.run_windowed(CountAggregate).result
    }

    /// Runs the scenario under the given windowed aggregation on the
    /// in-process transport and returns the measurements together with the
    /// merged per-window aggregates.
    ///
    /// # Panics
    /// Panics if the scenario or the engine knobs are invalid.
    pub fn run_windowed<A>(&self, aggregate: A) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        A::Partial: WirePartial,
    {
        self.run_windowed_on(aggregate, &InProc)
    }

    /// Runs the scenario under the given windowed aggregation over the given
    /// [`Transport`] backend.
    ///
    /// # Panics
    /// Panics if the scenario or the engine knobs are invalid.
    pub fn run_windowed_on<A, T>(&self, aggregate: A, transport: &T) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        A::Partial: WirePartial,
        T: Transport<A::Partial>,
    {
        self.run_windowed_faulted_on(aggregate, transport, &FaultPlan::none())
    }

    /// Runs the scenario with the given [`FaultPlan`] injected: workers
    /// crash and connections lose messages at the plan's deterministic
    /// offsets, and the checkpoint/replay recovery protocol restores the
    /// run. The merged windowed aggregates must come out identical to a
    /// fault-free run (the `fault_injection` suite pins this).
    ///
    /// # Panics
    /// Panics if the scenario, the engine knobs, or the fault plan are
    /// invalid.
    pub fn run_windowed_faulted_on<A, T>(
        &self,
        aggregate: A,
        transport: &T,
        faults: &FaultPlan,
    ) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        A::Partial: WirePartial,
        T: Transport<A::Partial>,
    {
        let mut plan = self.stage_plan();
        if let Err(message) = faults.validate(plan.sources, plan.spawned_workers) {
            panic!("invalid fault plan: {message}");
        }
        plan.faults = Arc::new(faults.clone());
        let scenario = self.scenario.clone();
        let streams =
            Arc::new(move |phase: usize, source: usize| scenario.phase_stream(phase, source));
        run_plan(&plan, streams, aggregate, transport)
    }
}

/// Outcome of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineResult {
    /// Scheme symbol.
    pub scheme: String,
    /// Zipf exponent of the workload (first phase's, for scenario runs).
    pub skew: f64,
    /// Messages processed (across all workers).
    pub processed: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Throughput in events per second.
    pub throughput_eps: f64,
    /// End-to-end latency summary (source emit → worker completion).
    pub latency: LatencySummary,
    /// Per-worker processed-message counts over the spawned worker universe
    /// (for imbalance auditing).
    pub worker_counts: Vec<u64>,
    /// Per-worker number of distinct keys held in state (memory footprint).
    pub worker_state_keys: Vec<u64>,
    /// Imbalance of the processed counts over the spawned universe. For
    /// multi-phase runs with worker-count changes, prefer the per-phase
    /// imbalance in [`Self::phases`], which is evaluated over each phase's
    /// active worker set.
    pub imbalance: f64,
    /// Tuples per window per source sub-stream in this run.
    pub window_size: u64,
    /// Number of aggregator shards in this run.
    pub aggregators: usize,
    /// Number of windows finalized by the aggregator stage.
    pub windows: u64,
    /// Per-phase measurements; exactly one entry for plain
    /// [`EngineConfig`] runs.
    pub phases: Vec<PhaseMetrics>,
    /// Worker-stage metrics: tuples through the workers' queues (same data
    /// as `processed`/`throughput_eps`/`latency`, packaged per stage).
    pub worker_stage: StageMetrics,
    /// Aggregator-stage metrics: partial-window messages merged, and the
    /// worker-close → aggregator-merge latency distribution.
    pub aggregator_stage: StageMetrics,
    /// Elasticity-controller decisions, merged across sources and sorted by
    /// `(source, window)`; `enabled == false` (and no events) when no
    /// controller was attached.
    pub controller: ControllerMetrics,
    /// The run's merged logical trace, in the canonical
    /// `(stage, instance, seq)` order (see [`sort_canonical`]): every
    /// window close, checkpoint save/restore, replay, rescale, and
    /// controller decision across all stage instances. Empty when the plan
    /// disables telemetry. Deterministic for a fixed config and seed —
    /// bit-identical across transport backends, reruns, and batch sizes on
    /// fault-free runs (docs/OBSERVABILITY.md states the argument).
    pub trace: Vec<TraceEvent>,
    /// Per-hop transport counters, merged across the instances of each
    /// stage. Wall-clock shaped (stall/wait times, high-water marks), so —
    /// unlike [`Self::trace`] — NOT deterministic across runs.
    pub transport: TransportStats,
    /// The telemetry-layer view of [`Self::latency`]: the merged end-to-end
    /// latency histogram across every worker's trackers — the exact
    /// distribution a remote node's `MetricsSnapshot` carries, so quantiles
    /// derived from it are what a live cluster dashboard would show
    /// (under-reporting the exact percentiles by < 6.25%;
    /// `expt_observability` measures this against [`Self::latency`]).
    pub latency_histogram: LogHistogram,
}

impl EngineResult {
    /// Total distinct `(key, worker)` state replicas across workers.
    pub fn total_state_replicas(&self) -> u64 {
        self.worker_state_keys.iter().sum()
    }
}

/// The run's transport counters, one [`HopStats`] per stage: what each
/// stage saw on its own send/receive seams (source→worker sends, worker
/// receive + worker→aggregator sends, aggregator receives).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransportStats {
    /// Merged over all source instances (send side of source→worker).
    pub source: HopStats,
    /// Merged over all workers (receive side of source→worker plus send
    /// side of worker→aggregator).
    pub worker: HopStats,
    /// Merged over all aggregator shards (receive side of
    /// worker→aggregator).
    pub aggregator: HopStats,
}

/// One phase of a run plan, fully resolved for execution.
#[derive(Debug, Clone)]
pub struct PhasePlan {
    /// Tuples each source emits during the phase.
    pub tuples_per_source: u64,
    /// Global index of the phase's first window.
    pub start_window: WindowId,
    /// Windows the phase covers per source.
    pub windows: u64,
    /// Active workers during the phase.
    pub workers: usize,
    /// Resolved per-worker service time (base × multiplier), indexed over
    /// the spawned worker universe.
    pub service: Arc<Vec<Duration>>,
    /// Arrival pacing within the phase.
    pub arrival: Arrival,
}

/// The fully resolved execution plan shared by every stage of a run — the
/// pure-data part (the key streams travel separately, as a factory, so the
/// per-tuple hot path stays monomorphized over each caller's concrete
/// stream type; a boxed `dyn KeyStream` costs a measurable ~10% of
/// zero-service throughput).
///
/// A `StagePlan` is cheap to clone (the phase tables are shared `Arc`s) and
/// is a pure function of the originating [`EngineConfig`] or
/// [`ScenarioConfig`], so every process of a distributed run can resolve the
/// same plan locally from the same config.
#[derive(Debug, Clone)]
pub struct StagePlan {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// Seed for the workload and the hash functions.
    pub seed: u64,
    /// Zipf exponent reported in the result (first phase's, for scenarios).
    pub skew: f64,
    /// Number of sources.
    pub sources: usize,
    /// Workers spawned up front (phases activate a prefix).
    pub spawned_workers: usize,
    /// Tuples per window per source sub-stream.
    pub window_size: u64,
    /// Tuples per transported channel message.
    pub batch_size: usize,
    /// Capacity of each worker's input queue, in tuples.
    pub queue_capacity: usize,
    /// Number of aggregator shards.
    pub aggregators: usize,
    /// Start-window table, indexed by phase (for window → phase lookup).
    pub phase_starts: Arc<Vec<WindowId>>,
    /// One resolved plan per phase.
    pub phases: Arc<Vec<PhasePlan>>,
    /// Deterministic fault schedule for the run (empty for plain runs).
    /// Never serialized: fault plans travel beside a config, not inside it,
    /// so the wire `RunSpec` of a distributed run stays unchanged.
    pub faults: Arc<FaultPlan>,
    /// Whether workers persist a checkpoint at every window finalization.
    /// Always `true` for every public run entry point — recovery depends on
    /// it — and only disabled by the perf smoke's A/B measurement of the
    /// checkpoint path's cost ([`Topology::run_windowed_without_checkpoints`]).
    pub checkpointing: bool,
    /// Whether the stages collect telemetry: per-hop transport counters
    /// ([`HopStats`] in the reports) and the logical trace stream. Always
    /// `true` for every public run entry point — telemetry is designed to
    /// be cheap enough to leave on — and only disabled by the perf smoke's
    /// A/B measurement of its cost
    /// ([`Topology::run_windowed_without_telemetry`]).
    pub telemetry: bool,
    /// Solver mode every source passes into its partitioner's
    /// [`PartitionConfig`]; `External` whenever `controller` is set.
    pub solver: SolverMode,
    /// Elasticity controller stepped by every source at its window
    /// boundaries; `None` runs exactly the pre-controller engine.
    pub controller: Option<ControllerConfig>,
}

impl StagePlan {
    /// Total windows every worker must finalize over the whole run.
    pub fn total_windows(&self) -> u64 {
        self.phases.iter().map(|p| p.windows).sum()
    }
}

/// The batch size a plan actually runs with: the configured size clamped to
/// the configured queue capacity. [`capacity_in_batches`] floors at two
/// batches so senders can double-buffer, which means a batch larger than the
/// queue would silently buffer `2 × batch_size` tuples — up to 64× a small
/// requested bound. Clamping the batch instead keeps worst-case buffering at
/// `2 × queue_capacity` while leaving every configuration with
/// `batch_size <= queue_capacity` (including all defaults) bit-for-bit
/// unchanged.
fn effective_batch_size(batch_size: usize, queue_capacity: usize) -> usize {
    batch_size.min(queue_capacity)
}

/// The send side of one source: per-worker sequence counters, the
/// connection-drop schedule, and the sent-tuple count. Every message to a
/// worker — batch or close marker — consumes the next sequence number on
/// that (source, worker) connection, *including* messages a
/// [`ConnectionDrop`] fault then discards: the receiver observes the gap
/// and recovers by requesting replay.
struct SourceSendState<'a, Tx: TupleSender> {
    senders: &'a [Tx],
    source: usize,
    next_seq: Vec<u64>,
    /// `(drop spec, batches lost so far)`; close markers are never dropped,
    /// so a window's close always survives and gap detection precedes
    /// finalization.
    drops: Vec<(ConnectionDrop, u64)>,
    sent: u64,
    /// Workers the supervisor excluded after an exhausted respawn budget.
    /// Their sequence cursors still advance — the cursor space stays
    /// uniform for snapshots and replay — but no frame is handed to the
    /// dead endpoint's sender.
    excluded: Vec<bool>,
    /// Per-hop transport telemetry, updated once per sent message (never
    /// per tuple); `None` when the plan disabled telemetry.
    hop: Option<&'a HopTelemetry>,
}

impl<'a, Tx: TupleSender> SourceSendState<'a, Tx> {
    fn new(
        senders: &'a [Tx],
        source: usize,
        faults: &FaultPlan,
        hop: Option<&'a HopTelemetry>,
    ) -> Self {
        Self {
            senders,
            source,
            next_seq: vec![0; senders.len()],
            drops: faults
                .drops_from(source)
                .into_iter()
                .map(|d| (d, 0))
                .collect(),
            sent: 0,
            excluded: vec![false; senders.len()],
            hop,
        }
    }

    /// True when the drop schedule says to lose the batch numbered `seq` on
    /// the connection to `worker` (and charges it against the schedule).
    fn loses(&mut self, worker: usize, seq: u64) -> bool {
        for (spec, lost) in self.drops.iter_mut() {
            if spec.worker == worker && *lost < spec.lose && seq >= spec.after_messages {
                *lost += 1;
                return true;
            }
        }
        false
    }

    fn send_batch(
        &mut self,
        worker: usize,
        keys: Vec<KeyId>,
        window: WindowId,
        emitted_at: Instant,
    ) {
        // `sent` counts at routing time even when the fault schedule then
        // discards the frame: replay re-sends are never counted, so the
        // run-level `sent == processed` invariant survives fault injection.
        self.sent += keys.len() as u64;
        let seq = self.next_seq[worker];
        self.next_seq[worker] += 1;
        if self.loses(worker, seq) || self.excluded[worker] {
            return;
        }
        // Telemetry rides the per-batch path only: a handful of Relaxed
        // counter bumps and one occupancy sample per shipped batch, zero
        // work per tuple.
        let timed = self.hop.map(|h| {
            h.batches_sent.add(1);
            h.tuples_sent.add(keys.len() as u64);
            h.batch_occupancy.record(keys.len() as u64);
            if let Some((occupied, capacity)) = self.senders[worker].queue_depth_hint() {
                h.ring_occupancy_hwm.record(occupied as u64);
                h.ring_capacity.set(capacity as u64);
            }
            (h, Instant::now())
        });
        self.senders[worker]
            .send(SourceMessage::Batch(TupleBatch {
                keys,
                window,
                source: self.source,
                seq,
                emitted_at,
            }))
            .expect("worker queue closed prematurely");
        if let Some((h, before)) = timed {
            h.send_stall_us.add(before.elapsed().as_micros() as u64);
        }
    }

    fn send_close(&mut self, worker: usize, window: WindowId) {
        let seq = self.next_seq[worker];
        self.next_seq[worker] += 1;
        if self.excluded[worker] {
            return;
        }
        let timed = self.hop.map(|h| (h, Instant::now()));
        self.senders[worker]
            .send(SourceMessage::CloseWindow {
                window,
                source: self.source,
                seq,
            })
            .expect("worker queue closed prematurely");
        if let Some((h, before)) = timed {
            h.send_stall_us.add(before.elapsed().as_micros() as u64);
        }
    }

    fn broadcast_close(&mut self, window: WindowId) {
        for worker in 0..self.senders.len() {
            self.send_close(worker, window);
        }
    }

    /// A buffer for the next batch to `worker`: a spent one off the
    /// transport's recycling return path when available (cleared, capacity
    /// intact), else a fresh allocation. On backends with a return path
    /// (the SPSC transport) this makes the steady-state source loop
    /// allocation-free — the same buffers shuttle source → worker → source
    /// for the whole run.
    fn batch_buf(&self, worker: usize, batch_size: usize) -> Vec<KeyId> {
        match self.senders[worker].take_recycled() {
            Some(mut keys) => {
                keys.clear();
                keys
            }
            None => Vec::with_capacity(batch_size),
        }
    }
}

/// Ships every non-empty pending batch for the given window downstream.
fn flush_pending<Tx: TupleSender>(
    state: &mut SourceSendState<'_, Tx>,
    pending: &mut [Vec<KeyId>],
    pending_since: &[Instant],
    window: WindowId,
    batch_size: usize,
) {
    for worker in 0..pending.len() {
        if pending[worker].is_empty() {
            continue;
        }
        let keys = std::mem::replace(&mut pending[worker], state.batch_buf(worker, batch_size));
        state.send_batch(worker, keys, window, pending_since[worker]);
    }
}

/// Everything a source must remember to re-emit its stream from a window
/// boundary: the positioned key stream, the routing state, and the stream
/// and sequence cursors at the boundary. Pending per-worker buffers are
/// always empty at a boundary (the window was just flushed), so they need
/// no snapshotting.
struct SourceSnapshot<S> {
    phase_idx: usize,
    stream: S,
    partitioner: Box<dyn Partitioner<KeyId>>,
    local_idx: u64,
    emitted_in_phase: u64,
    next_seq: Vec<u64>,
    /// Exclusion flags at the boundary, so replay maps routed slots to the
    /// same actual worker indices the live loop used.
    excluded: Vec<bool>,
    /// Controller state at the boundary (post-step, like the partitioner),
    /// so replay re-derives the identical adaptation decisions. The
    /// per-window load buffer is *not* snapshotted: boundaries always leave
    /// it zeroed, so replay starts from a fresh one.
    controller: Option<ElasticityController>,
}

/// What a source stage returns: the sent-tuple count and, when an
/// elasticity controller ran, its drained decision log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SourceStageReport {
    /// Tuples sent (replay re-sends are never counted).
    pub sent: u64,
    /// The controller's decision log, in window order; empty without a
    /// controller.
    pub controller_events: Vec<ControllerEvent>,
    /// The deterministic logical trace of this source (window closes,
    /// rescales, controller decisions, replay serves); empty when the plan
    /// disables telemetry.
    pub trace: Vec<TraceEvent>,
    /// Transport counters for the source→worker hop; all-zero when the plan
    /// disables telemetry.
    pub transport: HopStats,
}

/// The partitioner configuration a source builds/rescales with for
/// `active` routed slots: the plan's seed and solver mode, paper defaults
/// otherwise.
fn partition_config(plan: &StagePlan, active: usize) -> PartitionConfig {
    PartitionConfig::new(active)
        .with_seed(plan.seed)
        .with_solver(plan.solver)
}

/// The actual worker indices a source routes to in a phase: the phase's
/// active prefix minus every supervisor-excluded worker. The partitioner is
/// (re)built for `active.len()` slots and a routed slot `r` addresses
/// `active[r]`; with nothing excluded this is the identity over the phase's
/// workers, so plain runs route bit-identically to earlier versions.
fn active_workers(phase_workers: usize, excluded: &[bool]) -> Vec<usize> {
    (0..phase_workers).filter(|&w| !excluded[w]).collect()
}

/// The phase that `window` belongs to, via the phase start-window table.
#[inline]
fn phase_of(starts: &[WindowId], window: WindowId) -> usize {
    starts.partition_point(|&s| s <= window) - 1
}

/// The runnable topology (one-phase [`EngineConfig`] front-end; see
/// [`ScenarioConfig`] for multi-phase runs).
pub struct Topology {
    config: EngineConfig,
}

impl Topology {
    /// Creates a topology from a configuration.
    ///
    /// # Panics
    /// Panics if any structural parameter is zero
    /// ([`EngineConfig::validate`]).
    pub fn new(config: EngineConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Runs the topology to completion with the default windowed count
    /// aggregation and returns the measurements (the per-window counts are
    /// computed and then discarded; use [`Self::run_windowed`] to keep them).
    pub fn run(&self) -> EngineResult {
        self.run_windowed(CountAggregate).result
    }

    /// Runs the topology to completion under the given windowed aggregation
    /// on the in-process transport and returns the measurements together
    /// with the final merged per-window aggregates.
    pub fn run_windowed<A>(&self, aggregate: A) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        A::Partial: WirePartial,
    {
        self.run_windowed_on(aggregate, &InProc)
    }

    /// Runs the topology to completion under the given windowed aggregation
    /// over the given [`Transport`] backend.
    pub fn run_windowed_on<A, T>(&self, aggregate: A, transport: &T) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        A::Partial: WirePartial,
        T: Transport<A::Partial>,
    {
        self.run_windowed_faulted_on(aggregate, transport, &FaultPlan::none())
    }

    /// Runs the topology with the given [`FaultPlan`] injected: workers
    /// crash and connections lose messages at the plan's deterministic
    /// offsets, and the checkpoint/replay recovery protocol restores the
    /// run. The merged windowed aggregates must come out identical to a
    /// fault-free run (the `fault_injection` suite pins this).
    ///
    /// # Panics
    /// Panics if the fault plan names a source or worker outside the
    /// topology.
    pub fn run_windowed_faulted_on<A, T>(
        &self,
        aggregate: A,
        transport: &T,
        faults: &FaultPlan,
    ) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        A::Partial: WirePartial,
        T: Transport<A::Partial>,
    {
        let mut plan = self.config.stage_plan();
        if let Err(message) = faults.validate(plan.sources, plan.spawned_workers) {
            panic!("invalid fault plan: {message}");
        }
        plan.faults = Arc::new(faults.clone());
        let cfg = self.config.clone();
        let streams = Arc::new(move |_phase: usize, source: usize| {
            crate::windows::source_stream(&cfg, source)
        });
        run_plan(&plan, streams, aggregate, transport)
    }

    /// Runs the topology with per-window checkpoint persistence disabled —
    /// the *measurement baseline* for the checkpoint path's cost, used by
    /// the CI perf smoke to assert that fault-free runs pay less than a
    /// fixed overhead budget for always-on checkpointing. Results are
    /// bit-identical to [`Self::run_windowed`]; only the durable writes are
    /// skipped. No faults can be injected here: recovery depends on the
    /// checkpoints this entry point elides.
    pub fn run_windowed_without_checkpoints<A>(&self, aggregate: A) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        A::Partial: WirePartial,
    {
        let mut plan = self.config.stage_plan();
        plan.checkpointing = false;
        let cfg = self.config.clone();
        let streams = Arc::new(move |_phase: usize, source: usize| {
            crate::windows::source_stream(&cfg, source)
        });
        run_plan(&plan, streams, aggregate, &InProc)
    }

    /// Runs the topology with telemetry collection disabled — the
    /// *measurement baseline* for the telemetry layer's cost, used by the
    /// CI perf smoke to assert that the per-batch counters and trace pushes
    /// stay within a fixed overhead budget. Results are bit-identical to
    /// [`Self::run_windowed`]; only the counters, histograms, and trace
    /// stream come back empty.
    pub fn run_windowed_without_telemetry<A>(&self, aggregate: A) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        A::Partial: WirePartial,
    {
        let mut plan = self.config.stage_plan();
        plan.telemetry = false;
        let cfg = self.config.clone();
        let streams = Arc::new(move |_phase: usize, source: usize| {
            crate::windows::source_stream(&cfg, source)
        });
        run_plan(&plan, streams, aggregate, &InProc)
    }
}

/// Everything one source contributes to a run, without a recovery channel:
/// generates and routes its sub-stream phase by phase, ships batches and
/// punctuation through `senders` (one per spawned worker), and returns its
/// [`SourceStageReport`] (sent-tuple count plus any controller decisions).
/// See [`run_source_stage_recoverable`] for the feedback-connected variant
/// the in-process runner uses.
///
/// `stream_for_phase(p)` must yield *this source's* key stream for phase
/// `p`; the engine and `slb-node` both construct it from the shared config
/// so every backend emits the identical stream.
///
/// # Panics
/// Panics if a send fails (a worker endpoint disappeared mid-run), or if
/// the plan schedules connection drops for this source (loss cannot be
/// recovered without a feedback channel).
pub fn run_source_stage<S, Tx>(
    plan: &StagePlan,
    source_idx: usize,
    stream_for_phase: impl FnMut(usize) -> S,
    senders: &[Tx],
) -> SourceStageReport
where
    S: KeyStream + Clone,
    Tx: TupleSender,
{
    run_source_stage_recoverable(
        plan,
        source_idx,
        stream_for_phase,
        senders,
        None::<crossbeam_channel::Receiver<ReplayRequest>>,
    )
}

/// [`run_source_stage`] plus the recovery protocol: the source keeps a ring
/// of window-boundary snapshots (positioned stream + routing state), polls `feedback` for
/// [`ReplayRequest`]s between chunks, serves them by re-emitting the
/// requested suffix from the newest covering snapshot, and — after its own
/// emission completes — keeps serving until every worker has dropped its
/// feedback sender (the signal that all windows finalized everywhere).
///
/// Replay re-runs the *identical* generation, routing, and batching from a
/// cloned stream and cloned routing state, so every re-sent frame is
/// bit-for-bit the frame originally sent (same keys, same window, same
/// sequence number); only the emit timestamp is fresh. Injected connection
/// drops apply to first-time sends only, never to replay.
///
/// # Panics
/// Panics if a send fails (a worker endpoint disappeared mid-run).
pub fn run_source_stage_recoverable<S, Tx, Frx>(
    plan: &StagePlan,
    source_idx: usize,
    stream_for_phase: impl FnMut(usize) -> S,
    senders: &[Tx],
    feedback: Option<Frx>,
) -> SourceStageReport
where
    S: KeyStream + Clone,
    Tx: TupleSender,
    Frx: FeedbackReceiver,
{
    run_source_stage_inner(plan, source_idx, stream_for_phase, senders, feedback, None)
}

/// A supervisor directive delivered to a running source stage, for
/// process-level fault tolerance (see docs/FAULTS.md). The orchestrator
/// translates control-plane frames into these events; the source handles
/// them on its own emission thread, between chunks, so replay and live
/// frames never interleave out of order on one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceControlEvent {
    /// A worker process respawned: swap in its fresh connection (the
    /// `reattach` hook), then replay this source's history to it from
    /// `from_seq` — the worker's restored per-source cursor.
    Rejoin {
        /// The respawned worker.
        worker: usize,
        /// This source's cursor from the worker's durable checkpoint.
        from_seq: u64,
    },
    /// A worker exhausted its respawn budget: stop routing to it from the
    /// next window boundary on (the only point where routing state may
    /// change; see [`Partitioner::rescale`]).
    Exclude {
        /// The permanently failed worker.
        worker: usize,
    },
    /// Every live worker and aggregator has reported; no further replay
    /// can be requested and the stage may return.
    Release,
}

/// The supervised source's control-plane hookup: the event queue and the
/// reattach hook that swaps a respawned worker's connection, plus the
/// deferred-exclusion and release state the event loop accumulates.
struct Supervision<'a> {
    events: &'a crossbeam_channel::Receiver<SourceControlEvent>,
    reattach: &'a mut dyn FnMut(usize),
    pending_exclusions: Vec<usize>,
    released: bool,
}

/// [`run_source_stage`] plus the supervisor protocol of the process-level
/// fault-tolerant runner: the source keeps the same window-boundary
/// snapshot ring as [`run_source_stage_recoverable`], but replay is driven
/// by [`SourceControlEvent`]s from the orchestrator's control plane instead
/// of a worker → source feedback channel (a respawned worker cannot keep a
/// feedback socket across its own death — its restored cursors travel in
/// the `Rejoin` control frame instead).
///
/// `reattach(worker)` must swap the sender for `worker` to the respawned
/// process's fresh data connection; it is called on this thread, before the
/// replay that follows it, so replayed frames always precede later live
/// frames. After emission the stage blocks on the event queue until
/// `Release` (or the queue closing) instead of waiting for feedback senders
/// to drop.
///
/// Returns the number of tuples sent (replay re-sends are not counted, and
/// tuples routed to an excluded worker count as sent — the degradation
/// report, not the sent count, carries the loss).
///
/// `live`, when given, is a shared [`HopTelemetry`] the stage updates in
/// place so a metrics ticker on another thread can snapshot it mid-run;
/// without it the stage keeps a private one (plan-gated) and only the final
/// report carries the numbers.
pub fn run_source_stage_supervised<S, Tx>(
    plan: &StagePlan,
    source_idx: usize,
    stream_for_phase: impl FnMut(usize) -> S,
    senders: &[Tx],
    events: &crossbeam_channel::Receiver<SourceControlEvent>,
    mut reattach: impl FnMut(usize),
    live: Option<Arc<HopTelemetry>>,
) -> SourceStageReport
where
    S: KeyStream + Clone,
    Tx: TupleSender,
{
    run_source_stage_inner_with_live(
        plan,
        source_idx,
        stream_for_phase,
        senders,
        None::<crossbeam_channel::Receiver<ReplayRequest>>,
        Some(Supervision {
            events,
            reattach: &mut reattach,
            pending_exclusions: Vec::new(),
            released: false,
        }),
        live,
    )
}

fn run_source_stage_inner<S, Tx, Frx>(
    plan: &StagePlan,
    source_idx: usize,
    stream_for_phase: impl FnMut(usize) -> S,
    senders: &[Tx],
    feedback: Option<Frx>,
    supervision: Option<Supervision<'_>>,
) -> SourceStageReport
where
    S: KeyStream + Clone,
    Tx: TupleSender,
    Frx: FeedbackReceiver,
{
    run_source_stage_inner_with_live(
        plan,
        source_idx,
        stream_for_phase,
        senders,
        feedback,
        supervision,
        None,
    )
}

fn run_source_stage_inner_with_live<S, Tx, Frx>(
    plan: &StagePlan,
    source_idx: usize,
    mut stream_for_phase: impl FnMut(usize) -> S,
    senders: &[Tx],
    feedback: Option<Frx>,
    mut supervision: Option<Supervision<'_>>,
    live: Option<Arc<HopTelemetry>>,
) -> SourceStageReport
where
    S: KeyStream + Clone,
    Tx: TupleSender,
    Frx: FeedbackReceiver,
{
    assert!(
        feedback.is_some() || plan.faults.drops_from(source_idx).is_empty(),
        "connection-drop faults require a recovery feedback channel"
    );
    // Snapshots serve replay over the feedback channel (in-process
    // recovery) or over supervisor Rejoin events (process-level recovery).
    let keep_snapshots = feedback.is_some() || supervision.is_some();
    let batch_size = plan.batch_size;
    let window_size = plan.window_size;
    // Hop telemetry: share the caller's live handle when given (so a
    // metrics ticker can snapshot mid-run), else keep a private plan-gated
    // one. `hop == None` means telemetry is off and the hot path pays
    // nothing beyond a branch per batch.
    let local_hop = (live.is_none() && plan.telemetry).then(HopTelemetry::default);
    let hop = live.as_deref().or(local_hop.as_ref());
    let mut trace = TraceBuf::new(trace_stage::SOURCE, source_idx as u32, plan.telemetry);
    let mut send = SourceSendState::new(senders, source_idx, &plan.faults, hop);
    // The elasticity controller and its zero-allocation per-window load
    // buffer (both `None` without a controller — the hot loop then runs
    // exactly the pre-controller engine). The first phase's worker count
    // seeds the controller; from there it owns the active count.
    let mut controller = plan.controller.as_ref().map(|cfg| {
        ElasticityController::new(cfg.clone(), source_idx as u32, plan.phases[0].workers)
    });
    let mut window_loads = plan
        .controller
        .as_ref()
        .map(|_| PerWindowLoads::new(senders.len()));
    let mut partitioner: Option<Box<dyn Partitioner<KeyId>>> = None;
    let mut keybuf: Vec<KeyId> = Vec::with_capacity(batch_size);
    let mut routebuf: Vec<usize> = Vec::with_capacity(batch_size);
    let mut pending: Vec<Vec<KeyId>> = (0..senders.len())
        .map(|_| Vec::with_capacity(batch_size))
        .collect();
    // The batch's emit stamp is taken when its FIRST tuple is
    // buffered, not when the batch ships: a tuple's recorded
    // latency must include the time it waits for its batch to
    // fill, otherwise the slowest-filling destinations (exactly
    // the under-loaded workers of a skewed run) would report the
    // smallest latencies. First-push stamping over-approximates
    // for later tuples in the batch; it never understates.
    let mut pending_since: Vec<Instant> = vec![Instant::now(); senders.len()];
    let mut local_idx = 0u64;
    let mut snapshots: VecDeque<SourceSnapshot<S>> = VecDeque::new();
    'phases: for (phase_idx, phase) in plan.phases.iter().enumerate() {
        // Phase boundary: regenerate the routing state for the
        // phase's worker count. Build on first use, rescale in
        // place afterwards — bit-for-bit equivalent to a fresh
        // build (see slb-core's rescale_props suite).
        //
        // Supervisor exclusions shrink the routed set: the partitioner
        // spans only the ACTIVE workers and `active` maps its slots back
        // to actual worker indices. Until an exclusion happens that map
        // is the identity, so unsupervised runs are bit-for-bit
        // unchanged.
        // With a controller, phase worker counts are advisory past phase 0:
        // the controller's active count carries across phase boundaries.
        let phase_active = match controller.as_ref() {
            Some(ctrl) => ctrl.active_workers(),
            None => phase.workers,
        };
        let mut active = active_workers(phase_active, &send.excluded);
        assert!(
            !active.is_empty(),
            "every worker excluded; nothing to route to"
        );
        let partition = partition_config(plan, active.len());
        match partitioner.as_mut() {
            None => partitioner = Some(build_partitioner::<KeyId>(plan.kind, &partition)),
            Some(part) => {
                part.rescale(&partition);
                if let Some(ctrl) = controller.as_mut() {
                    ctrl.note_partitioner_rebuilt();
                }
                trace.push(
                    trace_kind::RESCALE,
                    window_of(local_idx, window_size),
                    active.len() as u64,
                    phase_idx as u64,
                );
            }
        }
        let mut stream = stream_for_phase(phase_idx);
        if keep_snapshots {
            // Phase-start snapshot; for phase 0 this is the origin
            // snapshot every replay can fall back to.
            push_snapshot(
                &mut snapshots,
                SourceSnapshot {
                    phase_idx,
                    stream: stream.clone(),
                    partitioner: partitioner
                        .as_ref()
                        .expect("partitioner built above")
                        .clone(),
                    local_idx,
                    emitted_in_phase: 0,
                    next_seq: send.next_seq.clone(),
                    excluded: send.excluded.clone(),
                    controller: controller.clone(),
                },
            );
        }
        let mut emitted = 0u64;
        while emitted < phase.tuples_per_source {
            // Serve replay requests between chunks so a recovering
            // worker never waits on a source that is still emitting
            // (and so the bounded feedback queue keeps draining).
            if let Some(fb) = feedback.as_ref() {
                serve_pending_replays(
                    fb,
                    plan,
                    &mut stream_for_phase,
                    senders,
                    &snapshots,
                    source_idx,
                    &send.next_seq,
                    &mut trace,
                );
            }
            // Same idea for the supervisor protocol: a respawned
            // worker's Rejoin is served (reattach + replay) between
            // chunks, on this thread, so every replayed frame precedes
            // any later live frame on the fresh connection.
            if let Some(sup) = supervision.as_mut() {
                serve_supervision_events(
                    sup,
                    plan,
                    &mut stream_for_phase,
                    senders,
                    &snapshots,
                    source_idx,
                    &send.next_seq,
                    &mut trace,
                );
            }
            // Cap the buffer at the window's (and phase's)
            // remaining tuples so a routed batch never spans a
            // boundary; in a bursty phase, also at the burst's
            // remaining tuples so every burst boundary is observed
            // even when bursts are smaller than the batch size.
            let mut take = (batch_size as u64)
                .min(window_size - local_idx % window_size)
                .min(phase.tuples_per_source - emitted);
            if let Arrival::Bursty { burst_tuples, .. } = phase.arrival {
                take = take.min(burst_tuples - emitted % burst_tuples);
            }
            let take = take as usize;
            keybuf.clear();
            while keybuf.len() < take {
                match stream.next_key() {
                    Some(key) => keybuf.push(key),
                    None => break,
                }
            }
            if keybuf.is_empty() {
                // Stream dried up early (possible only for the
                // one-phase path, whose stream bounds the budget).
                break 'phases;
            }
            let window = window_of(local_idx, window_size);
            partitioner
                .as_mut()
                .expect("partitioner built above")
                .route_batch(&keybuf, &mut routebuf);
            // Controller signal: per-window counts by routed *slot* (slots
            // are the active prefix, so the imbalance view is contiguous).
            if let Some(wl) = window_loads.as_mut() {
                for &route in &routebuf {
                    wl.record(route);
                }
            }
            for (&key, &route) in keybuf.iter().zip(&routebuf) {
                let worker = active[route];
                if pending[worker].is_empty() {
                    pending_since[worker] = Instant::now();
                }
                pending[worker].push(key);
                if pending[worker].len() == batch_size {
                    let keys =
                        std::mem::replace(&mut pending[worker], send.batch_buf(worker, batch_size));
                    // A send only fails if the receiver is gone, which
                    // cannot happen before all senders are dropped;
                    // treat it as fatal.
                    send.send_batch(worker, keys, window, pending_since[worker]);
                }
            }
            let chunk = keybuf.len() as u64;
            local_idx += chunk;
            emitted += chunk;
            if local_idx % window_size == 0 {
                // Window complete: everything buffered belongs to it,
                // so flush first, then broadcast the close marker.
                flush_pending(&mut send, &mut pending, &pending_since, window, batch_size);
                send.broadcast_close(window);
                trace.push(trace_kind::WINDOW_CLOSE, window, 0, 0);
                // Apply deferred exclusions now that the window is
                // sealed: mark the dead workers, shrink the active
                // map, and rescale the partitioner — the same
                // split-minimising move a planned scale-in uses — so
                // the next window never routes to them.
                if let Some(sup) = supervision.as_mut() {
                    if !sup.pending_exclusions.is_empty() {
                        for &worker in &sup.pending_exclusions {
                            send.excluded[worker] = true;
                        }
                        sup.pending_exclusions.clear();
                        let count = match controller.as_ref() {
                            Some(ctrl) => ctrl.active_workers(),
                            None => phase.workers,
                        };
                        active = active_workers(count, &send.excluded);
                        assert!(
                            !active.is_empty(),
                            "every worker excluded; nothing to route to"
                        );
                        partitioner
                            .as_mut()
                            .expect("partitioner built above")
                            .rescale(&partition_config(plan, active.len()));
                        if let Some(ctrl) = controller.as_mut() {
                            ctrl.note_partitioner_rebuilt();
                        }
                        trace.push(trace_kind::RESCALE, window, active.len() as u64, 0);
                    }
                }
                // Elasticity-controller step: feed it the closing window's
                // per-slot loads; a scale decision rebuilds the routing
                // state for the new active count (the same split-minimising
                // move a planned scale-out uses), otherwise the head
                // snapshot drives an online d re-solve. Runs before the
                // boundary snapshot so replay resumes from post-decision
                // state and re-derives the identical future.
                if let Some(ctrl) = controller.as_mut() {
                    let wl = window_loads.as_mut().expect("window loads with controller");
                    let window_total = wl.total();
                    let window_max = wl.max_count();
                    wl.finish_window(active.len());
                    if let Some(new_active) = ctrl.observe_window(window_total, window_max) {
                        active = active_workers(new_active, &send.excluded);
                        assert!(
                            !active.is_empty(),
                            "every worker excluded; nothing to route to"
                        );
                        partitioner
                            .as_mut()
                            .expect("partitioner built above")
                            .rescale(&partition_config(plan, active.len()));
                    } else {
                        let part = partitioner.as_mut().expect("partitioner built above");
                        if let Some(snapshot) = part.head_snapshot() {
                            if let Some(decision) =
                                ctrl.retune(&snapshot.frequencies, snapshot.tail_mass())
                            {
                                part.apply_choices(decision);
                            }
                        }
                    }
                }
                if keep_snapshots {
                    // Boundary snapshot: pending buffers are empty
                    // (just flushed), so the stream/routing/sequence
                    // cursors fully describe the send state. Taken
                    // AFTER exclusions apply, so a replay covering
                    // this point routes exactly as the live loop will.
                    push_snapshot(
                        &mut snapshots,
                        SourceSnapshot {
                            phase_idx,
                            stream: stream.clone(),
                            partitioner: partitioner
                                .as_ref()
                                .expect("partitioner built above")
                                .clone(),
                            local_idx,
                            emitted_in_phase: emitted,
                            next_seq: send.next_seq.clone(),
                            excluded: send.excluded.clone(),
                            controller: controller.clone(),
                        },
                    );
                }
            }
            // Burst pacing: chunks never span a burst boundary (the
            // `take` cap above), so exactly one pause fires per
            // completed burst. Before sleeping, flush the partial
            // batches buffered so far: their latency stamp is the
            // *first* tuple's arrival, so letting them sit through the
            // pause (and however many pauses it takes to fill them)
            // would charge the whole wait to every tuple in the batch
            // and blow up tail latency at trickle rates. A burst
            // boundary is a deterministic point in the tuple sequence,
            // so replay re-derives the identical flush (and the
            // identical batch boundaries/seqs) with no wall-clock
            // input. Routing and counts are untouched.
            if let Arrival::Bursty {
                burst_tuples,
                pause_us,
            } = phase.arrival
            {
                if pause_us > 0 && emitted % burst_tuples == 0 && emitted < phase.tuples_per_source
                {
                    flush_pending(&mut send, &mut pending, &pending_since, window, batch_size);
                    thread::sleep(Duration::from_micros(pause_us));
                }
            }
        }
    }
    // End of stream: flush and close the final partial window
    // (full windows were already closed at their boundary; phases
    // always end on a boundary, so this fires only when the
    // one-phase path's message count does not divide evenly).
    if local_idx % window_size != 0 {
        let window = window_of(local_idx, window_size);
        flush_pending(&mut send, &mut pending, &pending_since, window, batch_size);
        send.broadcast_close(window);
        trace.push(trace_kind::WINDOW_CLOSE, window, 0, 0);
    }
    // Post-emission replay service: block until every worker has
    // finalized its last window and dropped its feedback sender. The
    // source keeps its tuple senders alive through this loop, so a worker
    // recovering late can still be fed.
    if let Some(fb) = feedback {
        while let Ok(request) = fb.recv() {
            replay_to_worker(
                plan,
                &mut stream_for_phase,
                senders,
                &snapshots,
                source_idx,
                request,
                &send.next_seq,
                &mut trace,
            );
        }
    }
    // Supervised analogue: block on the control-event queue until the
    // orchestrator's Release (every live worker and aggregator has
    // reported) or the queue closing. A worker respawning after this
    // source finished emitting still gets its reattach + replay here.
    if let Some(sup) = supervision.as_mut() {
        while !sup.released {
            match sup.events.recv() {
                Ok(SourceControlEvent::Rejoin { worker, from_seq }) => {
                    (sup.reattach)(worker);
                    replay_to_worker(
                        plan,
                        &mut stream_for_phase,
                        senders,
                        &snapshots,
                        source_idx,
                        ReplayRequest { worker, from_seq },
                        &send.next_seq,
                        &mut trace,
                    );
                }
                Ok(SourceControlEvent::Exclude { .. }) => {}
                Ok(SourceControlEvent::Release) | Err(_) => break,
            }
        }
    }
    // Controller decisions become trace events here, after the loop, from
    // the drained decision log: the log is already deterministic (window
    // order), so the trace inherits that without instrumenting controller
    // internals.
    let controller_events = controller
        .as_mut()
        .map(|c| c.take_events())
        .unwrap_or_default();
    for event in &controller_events {
        let kind = match event.action {
            ControllerAction::ScaleOut => trace_kind::CTRL_SCALE_OUT,
            ControllerAction::ScaleIn => trace_kind::CTRL_SCALE_IN,
            ControllerAction::Retune => trace_kind::CTRL_RETUNE,
        };
        trace.push(
            kind,
            event.window,
            u64::from(event.workers),
            u64::from(event.d),
        );
    }
    SourceStageReport {
        sent: send.sent,
        controller_events,
        trace: trace.into_events(),
        transport: hop.map(HopTelemetry::snapshot).unwrap_or_default(),
    }
}

/// Drains every queued supervisor event without blocking. `Rejoin` swaps
/// in the respawned worker's fresh connection (the reattach hook) and then
/// replays this source's history from the worker's restored cursor;
/// `Exclude` is deferred to the next window boundary — the only point
/// where routing state may change; `Release` ends the post-emission wait.
#[allow(clippy::too_many_arguments)]
fn serve_supervision_events<S, Tx>(
    sup: &mut Supervision<'_>,
    plan: &StagePlan,
    stream_for_phase: &mut impl FnMut(usize) -> S,
    senders: &[Tx],
    snapshots: &VecDeque<SourceSnapshot<S>>,
    source: usize,
    live_next_seq: &[u64],
    trace: &mut TraceBuf,
) where
    S: KeyStream + Clone,
    Tx: TupleSender,
{
    while let Ok(event) = sup.events.try_recv() {
        match event {
            SourceControlEvent::Rejoin { worker, from_seq } => {
                (sup.reattach)(worker);
                replay_to_worker(
                    plan,
                    stream_for_phase,
                    senders,
                    snapshots,
                    source,
                    ReplayRequest { worker, from_seq },
                    live_next_seq,
                    trace,
                );
            }
            SourceControlEvent::Exclude { worker } => sup.pending_exclusions.push(worker),
            SourceControlEvent::Release => sup.released = true,
        }
    }
}

/// Pushes a snapshot onto the replay ring, evicting the *second*-oldest
/// entry when full: index 0 — the origin snapshot — is always retained so
/// any `from_seq`, however old, has a covering snapshot.
fn push_snapshot<S>(snapshots: &mut VecDeque<SourceSnapshot<S>>, snapshot: SourceSnapshot<S>) {
    if snapshots.len() == REPLAY_SNAPSHOT_RING {
        snapshots.remove(1);
    }
    snapshots.push_back(snapshot);
}

/// Drains every queued replay request without blocking and serves each one.
#[allow(clippy::too_many_arguments)]
fn serve_pending_replays<S, Tx>(
    feedback: &impl FeedbackReceiver,
    plan: &StagePlan,
    stream_for_phase: &mut impl FnMut(usize) -> S,
    senders: &[Tx],
    snapshots: &VecDeque<SourceSnapshot<S>>,
    source: usize,
    live_next_seq: &[u64],
    trace: &mut TraceBuf,
) where
    S: KeyStream + Clone,
    Tx: TupleSender,
{
    while let Ok(Some(request)) = feedback.try_recv() {
        replay_to_worker(
            plan,
            stream_for_phase,
            senders,
            snapshots,
            source,
            request,
            live_next_seq,
            trace,
        );
    }
}

/// Re-sends every message this source has already addressed to
/// `request.worker` with `seq >= request.from_seq`, by re-running the
/// emission loop from the newest snapshot whose cursor for that worker is
/// at or before the requested position.
///
/// This mirrors the chunking, routing, and batching of
/// [`run_source_stage_recoverable`] exactly — same stream, same routing
/// state, same per-worker batch fill, same burst-boundary flushes — so
/// replayed frames carry the same keys, window, and sequence numbers as the
/// originals. Differences are deliberate: sends to other workers are
/// suppressed (their state is not rewound), the burst *sleep* is skipped
/// (timing only — but the burst chunk cap and the boundary flush ARE
/// mirrored, because the flush changes batch boundaries and therefore
/// sequence numbers), fault drops are not re-applied, and nothing is added
/// to the sent-tuple count. Replay stops as soon as the re-driven sequence
/// cursor catches up with the live one: everything past it is the live
/// loop's future, not replayable history.
#[allow(clippy::too_many_arguments)]
fn replay_to_worker<S, Tx>(
    plan: &StagePlan,
    stream_for_phase: &mut impl FnMut(usize) -> S,
    senders: &[Tx],
    snapshots: &VecDeque<SourceSnapshot<S>>,
    source: usize,
    request: ReplayRequest,
    live_next_seq: &[u64],
    trace: &mut TraceBuf,
) where
    S: KeyStream + Clone,
    Tx: TupleSender,
{
    let target = request.worker;
    let upto = live_next_seq[target];
    if request.from_seq >= upto {
        // Nothing sent past the requested cursor yet; the live loop will
        // produce those messages in order.
        return;
    }
    trace.push(trace_kind::REPLAY_SERVE, 0, target as u64, request.from_seq);
    let snap = snapshots
        .iter()
        .rev()
        .find(|s| s.next_seq[target] <= request.from_seq)
        .expect("origin snapshot covers sequence zero");
    let mut partitioner = snap.partitioner.clone();
    // Controller mirroring: replay re-steps a clone of the snapshot's
    // controller at every window boundary with the identical per-slot
    // signal (the full key buffer is routed below, not just the target's
    // share), so every adaptation decision — rescale or retune — replays
    // bit-identically. The clone's event log is discarded with the clone;
    // only the live loop's log is ever reported.
    let mut controller = snap.controller.clone();
    let mut window_loads = controller
        .as_ref()
        .map(|_| PerWindowLoads::new(senders.len()));
    // Routed slots map through the snapshot's exclusion set, exactly as
    // the live loop's did at that point — the identity map until a
    // supervisor exclusion happened. (A replay spanning an exclusion
    // boundary would route the post-boundary stretch with the
    // pre-boundary map; that cannot arise here because exclusion is
    // permanent death — an excluded worker never rejoins to request one.)
    let snap_active = match controller.as_ref() {
        Some(ctrl) => ctrl.active_workers(),
        None => plan.phases[snap.phase_idx].workers,
    };
    let mut active = active_workers(snap_active, &snap.excluded);
    let mut replay_seq = snap.next_seq[target];
    let batch_size = plan.batch_size;
    let window_size = plan.window_size;
    let mut local_idx = snap.local_idx;
    let mut keybuf: Vec<KeyId> = Vec::with_capacity(batch_size);
    let mut routebuf: Vec<usize> = Vec::with_capacity(batch_size);
    let mut pending: Vec<KeyId> = Vec::with_capacity(batch_size);
    let deliver_batch = |replay_seq: &mut u64, keys: Vec<KeyId>, window: WindowId| {
        let seq = *replay_seq;
        *replay_seq += 1;
        if seq >= request.from_seq {
            senders[target]
                .send(SourceMessage::Batch(TupleBatch {
                    keys,
                    window,
                    source,
                    seq,
                    emitted_at: Instant::now(),
                }))
                .expect("worker queue closed prematurely");
        }
    };
    let deliver_close = |replay_seq: &mut u64, window: WindowId| {
        let seq = *replay_seq;
        *replay_seq += 1;
        if seq >= request.from_seq {
            senders[target]
                .send(SourceMessage::CloseWindow {
                    window,
                    source,
                    seq,
                })
                .expect("worker queue closed prematurely");
        }
    };
    let mut resumed = false;
    'phases: for (phase_idx, phase) in plan.phases.iter().enumerate().skip(snap.phase_idx) {
        let (mut stream, mut emitted) = if !resumed {
            resumed = true;
            (snap.stream.clone(), snap.emitted_in_phase)
        } else {
            // Crossing a phase boundary inside the replay: rescale the
            // cloned routing state and open a fresh phase stream, exactly
            // as the live loop did.
            let count = match controller.as_ref() {
                Some(ctrl) => ctrl.active_workers(),
                None => phase.workers,
            };
            active = active_workers(count, &snap.excluded);
            partitioner.rescale(&partition_config(plan, active.len()));
            if let Some(ctrl) = controller.as_mut() {
                ctrl.note_partitioner_rebuilt();
            }
            (stream_for_phase(phase_idx), 0u64)
        };
        while emitted < phase.tuples_per_source {
            if replay_seq >= upto {
                return;
            }
            let mut take = (batch_size as u64)
                .min(window_size - local_idx % window_size)
                .min(phase.tuples_per_source - emitted);
            if let Arrival::Bursty { burst_tuples, .. } = phase.arrival {
                take = take.min(burst_tuples - emitted % burst_tuples);
            }
            let take = take as usize;
            keybuf.clear();
            while keybuf.len() < take {
                match stream.next_key() {
                    Some(key) => keybuf.push(key),
                    None => break,
                }
            }
            if keybuf.is_empty() {
                break 'phases;
            }
            let window = window_of(local_idx, window_size);
            partitioner.route_batch(&keybuf, &mut routebuf);
            if let Some(wl) = window_loads.as_mut() {
                for &route in &routebuf {
                    wl.record(route);
                }
            }
            for (&key, &route) in keybuf.iter().zip(&routebuf) {
                if active[route] != target {
                    continue;
                }
                pending.push(key);
                if pending.len() == batch_size {
                    let keys = std::mem::replace(&mut pending, Vec::with_capacity(batch_size));
                    deliver_batch(&mut replay_seq, keys, window);
                }
            }
            let chunk = keybuf.len() as u64;
            local_idx += chunk;
            emitted += chunk;
            if local_idx % window_size == 0 {
                if !pending.is_empty() {
                    let keys = std::mem::replace(&mut pending, Vec::with_capacity(batch_size));
                    deliver_batch(&mut replay_seq, keys, window);
                }
                deliver_close(&mut replay_seq, window);
                // Controller step, mirroring the live loop's boundary
                // exactly (same signal, same order), so the cloned routing
                // state takes the same rescale/retune path.
                if let Some(ctrl) = controller.as_mut() {
                    let wl = window_loads.as_mut().expect("window loads with controller");
                    let window_total = wl.total();
                    let window_max = wl.max_count();
                    wl.finish_window(active.len());
                    if let Some(new_active) = ctrl.observe_window(window_total, window_max) {
                        active = active_workers(new_active, &snap.excluded);
                        partitioner.rescale(&partition_config(plan, active.len()));
                    } else if let Some(snapshot) = partitioner.head_snapshot() {
                        if let Some(decision) =
                            ctrl.retune(&snapshot.frequencies, snapshot.tail_mass())
                        {
                            partitioner.apply_choices(decision);
                        }
                    }
                }
            }
            // Burst-boundary flush, mirroring the live loop (sans sleep):
            // the flush consumes a sequence number whenever the target's
            // buffer is non-empty, so skipping it here would desync every
            // seq after the first mid-window burst boundary.
            if let Arrival::Bursty {
                burst_tuples,
                pause_us,
            } = phase.arrival
            {
                if pause_us > 0
                    && emitted % burst_tuples == 0
                    && emitted < phase.tuples_per_source
                    && !pending.is_empty()
                {
                    let keys = std::mem::replace(&mut pending, Vec::with_capacity(batch_size));
                    deliver_batch(&mut replay_seq, keys, window);
                }
            }
        }
    }
    // Trailing partial window, mirroring the live loop's end-of-stream
    // flush (reached only when replay extends to the very end of the run).
    if replay_seq < upto && local_idx % window_size != 0 {
        let window = window_of(local_idx, window_size);
        if !pending.is_empty() {
            let keys = std::mem::replace(&mut pending, Vec::with_capacity(batch_size));
            deliver_batch(&mut replay_seq, keys, window);
        }
        deliver_close(&mut replay_seq, window);
    }
}

/// What one worker reports after draining its input channel: counts,
/// state footprint, per-phase latency trackers, and per-phase activity
/// spans as `(first, last)` microseconds since the run epoch (an
/// `Instant`-free representation, so reports can cross process boundaries).
#[derive(Debug, Clone, Default)]
pub struct WorkerStageReport {
    /// Tuples processed.
    pub processed: u64,
    /// Tuples processed per phase.
    pub phase_counts: Vec<u64>,
    /// Per-phase latency samples.
    pub phase_latencies: Vec<LatencyTracker>,
    /// Distinct keys this worker ever held state for.
    pub state_keys: u64,
    /// Windows this worker finalized (must equal the run's window count).
    pub windows_closed: u64,
    /// Per-phase `(first, last)` batch-completion instants, µs since epoch.
    pub phase_spans: Vec<Option<(u64, u64)>>,
    /// Recovery activity: restores, replayed tuples, dedup drops, replay
    /// requests. All zero on a fault-free run.
    pub recovery: RecoveryMetrics,
    /// Checkpoints this worker saved (one per window finalization,
    /// including re-finalizations after a restore).
    pub checkpoints: u64,
    /// The deterministic logical trace of this worker (window closes,
    /// checkpoint saves/restores, replay requests); empty when the plan
    /// disables telemetry.
    pub trace: Vec<TraceEvent>,
    /// Transport counters for this worker's receive side plus its
    /// worker→aggregator sends; all-zero when the plan disables telemetry.
    pub transport: HopStats,
}

/// Everything one worker contributes to a run, without a recovery channel:
/// drains whole runs of batches from `receiver`, spins for the phase's
/// per-worker service time, accumulates per-window partial aggregates, and
/// — once every source's close marker for a window has arrived — shards the
/// window's partial and ships the slices through `partial_senders` (one per
/// aggregator). Checkpoints are still taken at every window finalization
/// (the durability cost is part of the engine, not of fault injection), but
/// no crash can be simulated and no replay requested. See
/// [`run_worker_stage_recoverable`] for the feedback-connected variant.
///
/// `epoch` anchors the report's span timestamps; pass the instant the run
/// started (the same epoch on every node of a distributed run).
///
/// # Panics
/// Panics if a partial send fails (an aggregator endpoint disappeared), or
/// if the plan schedules a kill for this worker (a crash cannot be
/// recovered without a feedback channel).
pub fn run_worker_stage<A, Rx, Tx>(
    plan: &StagePlan,
    worker_idx: usize,
    epoch: Instant,
    aggregate: &A,
    receiver: Rx,
    partial_senders: &[Tx],
) -> WorkerStageReport
where
    A: WindowAggregate<KeyId>,
    A::Partial: WirePartial,
    Rx: TupleReceiver,
    Tx: PartialSender<A::Partial>,
{
    run_worker_stage_recoverable(
        plan,
        worker_idx,
        epoch,
        aggregate,
        receiver,
        partial_senders,
        Vec::<crossbeam_channel::Sender<ReplayRequest>>::new(),
    )
}

/// The worker's distinct-key set (the memory-footprint metric), kept in
/// checkpoint order incrementally: per-tuple membership rides the hash
/// set, and a *new* key — rare, bounded by the key-space size — is also
/// placed into a sorted vector at its ordered position. The checkpoint
/// encoding then borrows the vector as-is instead of collecting and
/// re-sorting the whole set at every window close, which dominated the
/// checkpoint path's cost at zero service time.
struct StateKeys {
    set: std::collections::HashSet<KeyId>,
    sorted: Vec<KeyId>,
}

impl StateKeys {
    fn new() -> Self {
        Self {
            set: std::collections::HashSet::new(),
            sorted: Vec::new(),
        }
    }

    /// Rebuilds the set from a checkpoint's (strictly ascending) key list.
    fn restore(keys: &[KeyId]) -> Self {
        Self {
            set: keys.iter().copied().collect(),
            sorted: keys.to_vec(),
        }
    }

    fn insert(&mut self, key: KeyId) {
        if self.set.insert(key) {
            let at = self.sorted.partition_point(|&k| k < key);
            self.sorted.insert(at, key);
        }
    }

    fn len(&self) -> usize {
        self.sorted.len()
    }

    fn sorted(&self) -> &[KeyId] {
        &self.sorted
    }
}

/// Builds the consistent snapshot a worker saves at a window finalization:
/// counters, per-source sequence cursors, the (already sorted) state-key
/// set, and every still-open window's close count and encoded partial —
/// written into `out`, which the caller reuses across closes so the
/// steady-state encode allocates nothing for the checkpoint bytes. The
/// snapshot is a pure function of the per-source message prefixes recorded
/// in `next_seq`, which is what makes restore + bounded replay land the
/// worker in exactly the state it lost.
#[allow(clippy::too_many_arguments)]
fn encode_checkpoint_into<A>(
    aggregate: &A,
    worker: usize,
    windows_closed: u64,
    processed: u64,
    phase_counts: &[u64],
    next_seq: &[u64],
    state_keys: &[KeyId],
    open: &HashMap<WindowId, A::Partial>,
    closes: &HashMap<WindowId, usize>,
    out: &mut Vec<u8>,
) where
    A: WindowAggregate<KeyId>,
    A::Partial: WirePartial,
{
    let _ = aggregate;
    let mut windows: Vec<WindowId> = open.keys().chain(closes.keys()).copied().collect();
    windows.sort_unstable();
    windows.dedup();
    let open_states: Vec<OpenWindowState> = windows
        .into_iter()
        .map(|window| OpenWindowState {
            window,
            closes_seen: closes.get(&window).copied().unwrap_or(0) as u64,
            partial: open.get(&window).map(|partial| {
                let mut blob = Vec::new();
                partial.encode_partial(&mut blob);
                blob
            }),
        })
        .collect();
    let checkpoint = WorkerCheckpoint {
        worker: worker as u64,
        windows_closed,
        processed,
        phase_counts: phase_counts.to_vec(),
        next_seq: next_seq.to_vec(),
        state_keys: state_keys.to_vec(),
        open: open_states,
    };
    out.clear();
    checkpoint.encode(out);
}

/// [`run_worker_stage`] plus the recovery protocol. Three mechanisms stack
/// to make processing exactly-once under the plan's injected faults:
///
/// 1. **Sequence dedup.** Every message carries its per-(source, worker)
///    sequence number. A message below the expected cursor is a replay
///    overlap — dropped; above it is a gap — the worker sends one
///    [`ReplayRequest`] per missing cursor position and drops until the
///    expected message arrives; exactly at it — processed, cursor advances.
/// 2. **Per-window checkpoints.** At every window finalization the worker
///    saves an encoded [`WorkerCheckpoint`].
/// 3. **Crash + restore.** At a [`FaultPlan`] kill point the worker
///    discards *all* volatile state, decodes its last checkpoint (or starts
///    empty if it never took one), and asks every source to replay from the
///    checkpoint's cursors. Closed windows are never reprocessed — their
///    tuples sit below the checkpoint cursors — so aggregators see each
///    (worker, window) partial at most once per finalization.
///
/// After finalizing the plan's last window the worker drops its feedback
/// senders (letting sources finish their replay-service loops) and keeps
/// draining to EOF, shedding stragglers as duplicates.
///
/// # Panics
/// Panics if a partial send fails, or if recovery is needed (gap observed,
/// kill scheduled) and `feedback_senders` is empty.
#[allow(clippy::too_many_arguments)]
pub fn run_worker_stage_recoverable<A, Rx, Tx, Ftx>(
    plan: &StagePlan,
    worker_idx: usize,
    epoch: Instant,
    aggregate: &A,
    receiver: Rx,
    partial_senders: &[Tx],
    feedback_senders: Vec<Ftx>,
) -> WorkerStageReport
where
    A: WindowAggregate<KeyId>,
    A::Partial: WirePartial,
    Rx: TupleReceiver,
    Tx: PartialSender<A::Partial>,
    Ftx: FeedbackSender,
{
    run_worker_stage_inner(
        plan,
        worker_idx,
        epoch,
        aggregate,
        receiver,
        partial_senders,
        feedback_senders,
        None,
        None,
        false,
        None,
    )
}

/// [`run_worker_stage`] for the process-level fault-tolerant runner. Two
/// differences from the in-process recoverable variant:
///
/// - The worker may *start* from a durable checkpoint (`initial`, decoded
///   from the on-disk [`slb_core::DurableCheckpointStore`] by the respawned
///   process), and every checkpoint it takes is mirrored to `persist` (the
///   durable store's `save`) right after the in-memory save.
/// - There is no feedback channel: replay is requested on the worker's
///   behalf by the orchestrator — the `Rejoin` control frame carries the
///   restored cursors to every source. Consequently the stage *returns* as
///   soon as the plan's last window finalizes instead of draining to EOF,
///   because its tuple sockets stay open until the orchestrator's Release
///   (sources hold them for potential replay to OTHER respawned workers).
///
/// # Panics
/// Panics if a partial send fails, or on a sequence gap (with no feedback
/// channel a gap is unrecoverable from inside the stage; the supervised
/// source protocol guarantees gap-free delivery on each connection).
///
/// `live`, when given, is a shared [`HopTelemetry`] the stage updates in
/// place so a metrics ticker on another thread can snapshot it mid-run;
/// without it the stage keeps a private one (plan-gated).
#[allow(clippy::too_many_arguments)]
pub fn run_worker_stage_durable<A, Rx, Tx>(
    plan: &StagePlan,
    worker_idx: usize,
    epoch: Instant,
    aggregate: &A,
    receiver: Rx,
    partial_senders: &[Tx],
    initial: Option<&WorkerCheckpoint>,
    persist: &mut dyn FnMut(&[u8]),
    live: Option<Arc<HopTelemetry>>,
) -> WorkerStageReport
where
    A: WindowAggregate<KeyId>,
    A::Partial: WirePartial,
    Rx: TupleReceiver,
    Tx: PartialSender<A::Partial>,
{
    run_worker_stage_inner(
        plan,
        worker_idx,
        epoch,
        aggregate,
        receiver,
        partial_senders,
        Vec::<crossbeam_channel::Sender<ReplayRequest>>::new(),
        initial,
        Some(persist),
        true,
        live,
    )
}

/// Rebuilds every piece of volatile worker state a checkpoint covers:
/// `(processed, windows_closed, phase_counts, state, expected_seq, open,
/// closes)`. Shared by the simulated-crash restore (same process) and the
/// respawn restore (new process, checkpoint read from disk).
#[allow(clippy::type_complexity)]
fn restore_checkpoint_state<A>(
    checkpoint: &WorkerCheckpoint,
    n_phases: usize,
    sources: usize,
) -> (
    u64,
    u64,
    Vec<u64>,
    StateKeys,
    Vec<u64>,
    HashMap<WindowId, A::Partial>,
    HashMap<WindowId, usize>,
)
where
    A: WindowAggregate<KeyId>,
    A::Partial: WirePartial,
{
    let mut phase_counts = checkpoint.phase_counts.clone();
    phase_counts.resize(n_phases, 0);
    let mut expected_seq = checkpoint.next_seq.clone();
    expected_seq.resize(sources, 0);
    let open = checkpoint
        .open
        .iter()
        .filter_map(|w| {
            w.partial.as_ref().map(|blob| {
                let partial = A::Partial::decode_partial(&mut blob.as_slice())
                    .expect("a worker's own checkpoint decodes");
                (w.window, partial)
            })
        })
        .collect();
    let closes = checkpoint
        .open
        .iter()
        .filter(|w| w.closes_seen > 0)
        .map(|w| (w.window, w.closes_seen as usize))
        .collect();
    (
        checkpoint.processed,
        checkpoint.windows_closed,
        phase_counts,
        StateKeys::restore(&checkpoint.state_keys),
        expected_seq,
        open,
        closes,
    )
}

/// The durable worker's checkpoint-persist hook: called with the encoded
/// [`WorkerCheckpoint`] bytes at every window-finalization boundary.
type PersistFn<'a> = &'a mut dyn FnMut(&[u8]);

#[allow(clippy::too_many_arguments)]
fn run_worker_stage_inner<A, Rx, Tx, Ftx>(
    plan: &StagePlan,
    worker_idx: usize,
    epoch: Instant,
    aggregate: &A,
    receiver: Rx,
    partial_senders: &[Tx],
    mut feedback_senders: Vec<Ftx>,
    initial: Option<&WorkerCheckpoint>,
    mut persist: Option<PersistFn<'_>>,
    exit_at_last_window: bool,
    live: Option<Arc<HopTelemetry>>,
) -> WorkerStageReport
where
    A: WindowAggregate<KeyId>,
    A::Partial: WirePartial,
    Rx: TupleReceiver,
    Tx: PartialSender<A::Partial>,
    Ftx: FeedbackSender,
{
    let n_phases = plan.phases.len();
    let sources = plan.sources;
    let aggregators = plan.aggregators;
    let total_windows = plan.total_windows();
    // Stands in for this worker's durable medium (local disk, replicated
    // log): a simulated crash discards everything on the stack below and
    // restores only from these bytes.
    let store = CheckpointStore::new(1);
    let mut kill_points: VecDeque<u64> = plan.faults.kill_points(worker_idx).into();
    assert!(
        kill_points.is_empty() || !feedback_senders.is_empty(),
        "kill-worker faults require a recovery feedback channel"
    );
    let mut processed = 0u64;
    let mut phase_counts = vec![0u64; n_phases];
    let mut phase_latencies: Vec<LatencyTracker> = (0..n_phases)
        .map(|_| LatencyTracker::with_capacity(1_024))
        .collect();
    // First/last batch-completion instants per phase, for the
    // per-phase throughput span. Timing diagnostics survive a simulated
    // crash (they describe the wall clock, not the recovered state).
    let mut phase_spans: Vec<Option<(u64, u64)>> = vec![None; n_phases];
    // Distinct keys this worker has ever held state for (the
    // memory-footprint metric); the per-key counts themselves
    // live in the window partials.
    let mut state = StateKeys::new();
    let mut open: HashMap<WindowId, A::Partial> = HashMap::new();
    let mut closes: HashMap<WindowId, usize> = HashMap::new();
    let mut windows_closed = 0u64;
    // Per-source sequence dedup state.
    let mut expected_seq = vec![0u64; sources];
    // One past the highest sequence number ever observed per source; feeds
    // only the replayed-items diagnostic (a delivery behind the frontier
    // is a replay), never a recovery decision, so it survives crashes.
    let mut frontier = vec![0u64; sources];
    // The cursor a replay request is outstanding for, per source; cleared
    // when the expected message arrives, so each gap asks exactly once.
    let mut pending_request: Vec<Option<u64>> = vec![None; sources];
    let mut recovery = RecoveryMetrics::default();
    let mut checkpoints = 0u64;
    // Hop telemetry and the logical trace; see the source stage for the
    // live-vs-private convention. All per-message, never per-tuple.
    let local_hop = (live.is_none() && plan.telemetry).then(HopTelemetry::default);
    let hop = live.as_deref().or(local_hop.as_ref());
    let mut trace = TraceBuf::new(trace_stage::WORKER, worker_idx as u32, plan.telemetry);
    // Reused across window closes so the steady-state checkpoint encode
    // allocates nothing for the snapshot bytes.
    let mut checkpoint_buf: Vec<u8> = Vec::new();
    if let Some(checkpoint) = initial {
        // Respawn restore: this process starts where its predecessor's
        // last durable checkpoint left off. The replay that fills the
        // gap was already requested on our behalf (the Rejoin frame
        // carried these cursors to every source).
        recovery.restores += 1;
        recovery.replay_requests += sources as u64;
        let (p, w, pc, st, es, op, cl) =
            restore_checkpoint_state::<A>(checkpoint, n_phases, sources);
        processed = p;
        windows_closed = w;
        phase_counts = pc;
        state = st;
        expected_seq = es;
        open = op;
        closes = cl;
        trace.push(trace_kind::CHECKPOINT_RESTORE, windows_closed, processed, 0);
    }
    if total_windows == 0 {
        // Degenerate empty run: no window will ever finalize, so release
        // the sources' replay-service loops immediately.
        feedback_senders.clear();
    }
    let mut drained: Vec<SourceMessage> = Vec::new();
    'recv: loop {
        let wait = hop.map(|h| (h, Instant::now()));
        let received = receiver.recv_batch(&mut drained);
        if let Some((h, before)) = wait {
            h.recv_wait_us.add(before.elapsed().as_micros() as u64);
        }
        match received {
            Ok(_) => {}
            Err(RecvError::Transport(_)) => {
                // A reader thread hit a malformed frame or a failed
                // read. Survivable: the erroring connection is done,
                // but the queue itself (and any other connection
                // feeding it) lives on — count it and keep draining.
                recovery.transport_errors += 1;
                continue;
            }
            Err(RecvError::Closed) => break,
        }
        if let Some(h) = hop {
            h.queue_depth_hwm.record(drained.len() as u64);
        }
        for message in drained.drain(..) {
            let (src, seq) = message.source_seq();
            frontier[src] = frontier[src].max(seq + 1);
            if seq < expected_seq[src] {
                // Replay overlap (or a frame re-sent past our progress):
                // already processed, drop it.
                recovery.duplicates_dropped += 1;
                continue;
            }
            if seq > expected_seq[src] {
                // Gap: a frame was lost ahead of us. Ask the source to
                // replay from the missing cursor (once per cursor value)
                // and shed everything until it arrives — FIFO per sender
                // means the replayed run will precede any newer frames.
                if pending_request[src] != Some(expected_seq[src]) {
                    assert!(
                        !feedback_senders.is_empty(),
                        "sequence gap from source {src} without a recovery feedback channel"
                    );
                    feedback_senders[src]
                        .send(ReplayRequest {
                            worker: worker_idx,
                            from_seq: expected_seq[src],
                        })
                        .expect("feedback channel closed prematurely");
                    trace.push(trace_kind::REPLAY_REQUEST, 0, src as u64, expected_seq[src]);
                    pending_request[src] = Some(expected_seq[src]);
                    recovery.replay_requests += 1;
                }
                recovery.duplicates_dropped += 1;
                continue;
            }
            expected_seq[src] += 1;
            pending_request[src] = None;
            let is_replay = seq + 1 < frontier[src];
            match message {
                SourceMessage::Batch(batch) => {
                    let n = batch.keys.len() as u64;
                    if let Some(h) = hop {
                        h.batches_received.add(1);
                        h.tuples_received.add(n);
                        h.batch_occupancy.record(n);
                    }
                    let phase = phase_of(&plan.phase_starts, batch.window);
                    let service = plan.phases[phase].service[worker_idx];
                    // Emulate the aggregation work with one
                    // busy-wait for the whole batch (n tuples'
                    // worth of service time): sleeping is far too
                    // coarse at microsecond granularity, and a
                    // per-tuple deadline would put two
                    // `Instant::now()` calls back on the per-tuple
                    // path.
                    if !service.is_zero() {
                        let until = Instant::now() + service * n as u32;
                        while Instant::now() < until {
                            std::hint::spin_loop();
                        }
                    }
                    let partial = open
                        .entry(batch.window)
                        .or_insert_with(|| aggregate.empty());
                    for key in &batch.keys {
                        state.insert(*key);
                        aggregate.observe(partial, key, 1);
                    }
                    if is_replay {
                        recovery.replayed_items += n;
                    }
                    let done = Instant::now();
                    let batch_latency_us = done.duration_since(batch.emitted_at).as_micros() as u64;
                    phase_latencies[phase].record_many_us(batch_latency_us, n);
                    phase_counts[phase] += n;
                    processed += n;
                    let done_us = done.saturating_duration_since(epoch).as_micros() as u64;
                    let span = phase_spans[phase].get_or_insert((done_us, done_us));
                    span.1 = done_us;
                    // Injected crash: trips once when lifetime processed
                    // tuples reach the threshold. Consumed before the
                    // restore so the rewound counter cannot re-trip it.
                    while kill_points.front().is_some_and(|&at| processed >= at) {
                        kill_points.pop_front();
                        recovery.restores += 1;
                        // -- crash -- every live variable below is lost.
                        let checkpoint = store
                            .load(0)
                            .map(|bytes| {
                                WorkerCheckpoint::decode(&mut bytes.as_slice())
                                    .expect("a worker's own checkpoint decodes")
                            })
                            .unwrap_or_default();
                        // -- restart -- restore from the checkpoint alone.
                        let (p, w, pc, st, es, op, cl) =
                            restore_checkpoint_state::<A>(&checkpoint, n_phases, sources);
                        processed = p;
                        windows_closed = w;
                        phase_counts = pc;
                        state = st;
                        expected_seq = es;
                        open = op;
                        closes = cl;
                        trace.push(trace_kind::CHECKPOINT_RESTORE, windows_closed, processed, 0);
                        for (src, sender) in feedback_senders.iter().enumerate() {
                            sender
                                .send(ReplayRequest {
                                    worker: worker_idx,
                                    from_seq: expected_seq[src],
                                })
                                .expect("feedback channel closed prematurely");
                            trace.push(
                                trace_kind::REPLAY_REQUEST,
                                0,
                                src as u64,
                                expected_seq[src],
                            );
                            pending_request[src] = Some(expected_seq[src]);
                            recovery.replay_requests += 1;
                        }
                    }
                    // The batch is consumed; hand its buffer back to the
                    // sources on transports with a recycling return path
                    // (a no-op everywhere else).
                    receiver.recycle(batch.keys);
                }
                SourceMessage::CloseWindow { window, .. } => {
                    let seen = closes.entry(window).or_insert(0);
                    *seen += 1;
                    if *seen < sources {
                        continue;
                    }
                    // Channels are FIFO per source and sequence dedup
                    // admits each marker once, so with all sources'
                    // markers in hand this worker holds every tuple of
                    // the window that was routed to it: finalize and
                    // ship the shard slices.
                    closes.remove(&window);
                    let partial = open.remove(&window).unwrap_or_else(|| aggregate.empty());
                    let closed_at = Instant::now();
                    let timed = hop.map(|h| (h, Instant::now()));
                    for (shard, slice) in aggregate
                        .shard(partial, aggregators)
                        .into_iter()
                        .enumerate()
                    {
                        partial_senders[shard]
                            .send(PartialWindow {
                                window,
                                worker: worker_idx,
                                partial: slice,
                                closed_at,
                            })
                            .expect("aggregator queue closed prematurely");
                    }
                    if let Some((h, before)) = timed {
                        h.send_stall_us.add(before.elapsed().as_micros() as u64);
                        h.batches_sent.add(aggregators as u64);
                        h.tuples_sent.add(aggregators as u64);
                    }
                    windows_closed += 1;
                    trace.push(trace_kind::WINDOW_CLOSE, window, windows_closed, 0);
                    // Checkpoint at the finalization boundary: shipping
                    // the partials and persisting the cursor that covers
                    // them happen back to back, so a later restore never
                    // re-finalizes this window.
                    if plan.checkpointing {
                        encode_checkpoint_into(
                            aggregate,
                            worker_idx,
                            windows_closed,
                            processed,
                            &phase_counts,
                            &expected_seq,
                            state.sorted(),
                            &open,
                            &closes,
                            &mut checkpoint_buf,
                        );
                        store.save(0, &checkpoint_buf);
                        // Mirror to the durable medium: the hook runs
                        // back to back with shipping the partials, so a
                        // respawn restoring these bytes never
                        // re-finalizes this window.
                        if let Some(hook) = persist.as_mut() {
                            hook(&checkpoint_buf);
                        }
                        checkpoints += 1;
                        trace.push(trace_kind::CHECKPOINT_SAVE, window, windows_closed, 0);
                    }
                    if windows_closed == total_windows {
                        // Last window done: release the sources' replay
                        // service, then keep draining to EOF (anything
                        // still in flight is a replay overlap) — unless
                        // this is the durable runner, whose sockets stay
                        // open until the orchestrator's Release: return
                        // instead of waiting for an EOF that only
                        // arrives after the release.
                        feedback_senders.clear();
                        if exit_at_last_window {
                            break 'recv;
                        }
                    }
                }
            }
        }
    }
    debug_assert!(
        open.is_empty() && closes.is_empty(),
        "all windows must be closed by end of stream"
    );
    WorkerStageReport {
        processed,
        phase_counts,
        phase_latencies,
        state_keys: state.len() as u64,
        windows_closed,
        phase_spans,
        recovery,
        checkpoints,
        trace: trace.into_events(),
        transport: hop.map(HopTelemetry::snapshot).unwrap_or_default(),
    }
}

/// What one aggregator reports: the windows it finalized, the close→merge
/// latency distribution, how many partial messages it merged, and how many
/// it dropped as duplicates.
pub struct AggregatorStageReport<P> {
    /// Final merged aggregate per window this shard owned.
    pub finalized: BTreeMap<WindowId, P>,
    /// Close→merge latency samples.
    pub latencies: LatencyTracker,
    /// Partial-window messages merged (each counted at most once per
    /// distinct `(worker, window)`).
    pub merged: u64,
    /// Partial-window messages dropped because their `(worker, window)` had
    /// already contributed — a recovered worker re-shipping a partial. Zero
    /// on a fault-free run, and zero even under kill faults (checkpoints at
    /// finalization mean closed windows are never re-finalized); the dedup
    /// is the aggregator's own exactly-once guarantee regardless.
    pub duplicates_dropped: u64,
    /// Transport-level receive errors survived (a reader thread reporting
    /// a malformed frame or failed read instead of a clean EOF — e.g. a
    /// SIGKILLed worker's connection tearing mid-frame).
    pub transport_errors: u64,
    /// The deterministic logical trace of this shard (one `WINDOW_CLOSE`
    /// per finalized window, in finalization order); empty when telemetry
    /// is disabled.
    pub trace: Vec<TraceEvent>,
    /// Transport counters for this shard's receive side; all-zero when
    /// telemetry is disabled.
    pub transport: HopStats,
}

/// Everything one aggregator contributes to a run: merges partial-window
/// slices from `receiver` as they arrive; a window is final once every one
/// of the `spawned_workers` workers has contributed its slice.
/// Contributions are counted by *distinct* worker — a duplicate
/// `(worker, window)` partial (a recovered worker re-shipping) is dropped,
/// never double-merged.
///
/// `shard` is this aggregator's index (it keys the trace); `telemetry`
/// gates both the trace and the hop counters.
pub fn run_aggregator_stage<A, Rx>(
    spawned_workers: usize,
    aggregate: &A,
    receiver: Rx,
    shard: usize,
    telemetry: bool,
) -> AggregatorStageReport<A::Partial>
where
    A: WindowAggregate<KeyId>,
    Rx: PartialReceiver<A::Partial>,
{
    run_aggregator_stage_inner(
        spawned_workers,
        None,
        aggregate,
        receiver,
        None,
        shard,
        telemetry,
        None,
    )
}

/// [`run_aggregator_stage`] plus the supervisor protocol of the
/// process-level fault-tolerant runner:
///
/// - An `Exclude` on the `exclusions` channel drops a permanently dead
///   worker from every finalization quorum — windows already waiting only
///   on it finalize immediately, and later windows no longer expect it.
///   (Graceful degradation: window counts lose the dead worker's share,
///   but the run *terminates* with a report instead of hanging.)
/// - The stage returns as soon as `total_windows` windows have finalized,
///   instead of draining to EOF: under a respawn the data queue's senders
///   (the listener accepting reconnections) outlive the stage on purpose.
///
/// `live`, when given, is a shared [`HopTelemetry`] the stage updates in
/// place so a metrics ticker on another thread can snapshot it mid-run.
#[allow(clippy::too_many_arguments)]
pub fn run_aggregator_stage_supervised<A, Rx>(
    spawned_workers: usize,
    total_windows: u64,
    aggregate: &A,
    receiver: Rx,
    exclusions: &crossbeam_channel::Receiver<usize>,
    shard: usize,
    telemetry: bool,
    live: Option<Arc<HopTelemetry>>,
) -> AggregatorStageReport<A::Partial>
where
    A: WindowAggregate<KeyId>,
    Rx: PartialReceiver<A::Partial>,
{
    run_aggregator_stage_inner(
        spawned_workers,
        Some(total_windows),
        aggregate,
        receiver,
        Some(exclusions),
        shard,
        telemetry,
        live,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_aggregator_stage_inner<A, Rx>(
    spawned_workers: usize,
    total_windows: Option<u64>,
    aggregate: &A,
    receiver: Rx,
    exclusions: Option<&crossbeam_channel::Receiver<usize>>,
    shard: usize,
    telemetry: bool,
    live: Option<Arc<HopTelemetry>>,
) -> AggregatorStageReport<A::Partial>
where
    A: WindowAggregate<KeyId>,
    Rx: PartialReceiver<A::Partial>,
{
    // Hop telemetry and the logical trace; see the source stage for the
    // live-vs-private convention.
    let local_hop = (live.is_none() && telemetry).then(HopTelemetry::default);
    let hop = live.as_deref().or(local_hop.as_ref());
    let mut trace = TraceBuf::new(trace_stage::AGGREGATOR, shard as u32, telemetry);
    let mut latencies = LatencyTracker::with_capacity(256);
    let mut merged = 0u64;
    let mut duplicates_dropped = 0u64;
    let mut transport_errors = 0u64;
    // Supervisor-excluded workers: no longer part of any quorum.
    let mut excluded = vec![false; spawned_workers];
    let mut excluded_any = false;
    // Per open window: the merged partial, which workers contributed, and
    // the distinct-contributor count.
    #[allow(clippy::type_complexity)]
    let mut open: HashMap<WindowId, (A::Partial, Vec<bool>, usize)> = HashMap::new();
    let mut finalized: BTreeMap<WindowId, A::Partial> = BTreeMap::new();
    let mut drained: Vec<PartialWindow<A::Partial>> = Vec::new();
    let all_done = |finalized: &BTreeMap<WindowId, A::Partial>| {
        total_windows.is_some_and(|t| finalized.len() as u64 >= t)
    };
    'recv: while !all_done(&finalized) {
        // Serve supervisor exclusions between receive rounds (the shim's
        // channels have no select, so the data queue is polled with its
        // own blocking receive and exclusions are drained non-blockingly;
        // the orchestrator follows every Exclude broadcast with data-side
        // progress — at minimum the queue closing — so this never
        // deadlocks).
        if let Some(rx) = exclusions {
            let mut changed = false;
            while let Ok(worker) = rx.try_recv() {
                if worker < spawned_workers && !excluded[worker] {
                    excluded[worker] = true;
                    excluded_any = true;
                    changed = true;
                }
            }
            if changed {
                finalize_quorate_windows(
                    &mut open,
                    &mut finalized,
                    &excluded,
                    spawned_workers,
                    &mut trace,
                );
                if all_done(&finalized) {
                    break 'recv;
                }
            }
        }
        let wait = hop.map(|h| (h, Instant::now()));
        let received = receiver.recv_batch(&mut drained);
        if let Some((h, before)) = wait {
            h.recv_wait_us.add(before.elapsed().as_micros() as u64);
        }
        match received {
            Ok(_) => {}
            Err(RecvError::Transport(_)) => {
                // One connection tore mid-frame (e.g. its worker was
                // SIGKILLed); the queue and every other connection
                // feeding it live on. Count and keep draining.
                transport_errors += 1;
                continue;
            }
            Err(RecvError::Closed) => break,
        }
        if let Some(h) = hop {
            // Each drained element is one partial-window message.
            let n = drained.len() as u64;
            h.batches_received.add(n);
            h.tuples_received.add(n);
            h.queue_depth_hwm.record(n);
            h.batch_occupancy.record(n);
        }
        for pw in drained.drain(..) {
            if finalized.contains_key(&pw.window) {
                // Every worker already contributed; a straggler can only
                // be a re-shipped duplicate (or, under degradation, a
                // dead worker's late partial outrun by its exclusion).
                duplicates_dropped += 1;
                continue;
            }
            if excluded[pw.worker] {
                // A late partial from a worker already dropped from the
                // quorum: merging it now would double-count against the
                // exclusion-finalized windows, so shed it.
                duplicates_dropped += 1;
                continue;
            }
            let slot = open
                .entry(pw.window)
                .or_insert_with(|| (aggregate.empty(), vec![false; spawned_workers], 0));
            if slot.1[pw.worker] {
                duplicates_dropped += 1;
                continue;
            }
            slot.1[pw.worker] = true;
            slot.2 += 1;
            latencies.record_us(pw.closed_at.elapsed().as_micros() as u64);
            merged += 1;
            aggregate.merge(&mut slot.0, pw.partial);
            let complete = if excluded_any {
                (0..spawned_workers).all(|w| excluded[w] || slot.1[w])
            } else {
                slot.2 == spawned_workers
            };
            if complete {
                let (partial, _, _) = open.remove(&pw.window).expect("window is open");
                finalized.insert(pw.window, partial);
                trace.push(trace_kind::WINDOW_CLOSE, pw.window, 0, 0);
                if all_done(&finalized) {
                    break 'recv;
                }
            }
        }
    }
    // The data queue may close (or the window budget fill) with an
    // Exclude still queued; apply it so windows waiting only on the dead
    // worker still finalize and the caller terminates with a report.
    if let Some(rx) = exclusions {
        while let Ok(worker) = rx.try_recv() {
            if worker < spawned_workers {
                excluded[worker] = true;
            }
        }
        finalize_quorate_windows(
            &mut open,
            &mut finalized,
            &excluded,
            spawned_workers,
            &mut trace,
        );
    }
    debug_assert!(
        open.is_empty(),
        "every window must receive a partial from every (live) worker"
    );
    AggregatorStageReport {
        finalized,
        latencies,
        merged,
        duplicates_dropped,
        transport_errors,
        trace: trace.into_events(),
        transport: hop.map(HopTelemetry::snapshot).unwrap_or_default(),
    }
}

/// Moves every open window whose quorum is now satisfied — every worker
/// either contributed or is excluded — into the finalized map, in window
/// order (the candidate set comes off a `HashMap`, whose iteration order
/// is arbitrary — sorting keeps the trace deterministic).
fn finalize_quorate_windows<P>(
    open: &mut HashMap<WindowId, (P, Vec<bool>, usize)>,
    finalized: &mut BTreeMap<WindowId, P>,
    excluded: &[bool],
    spawned_workers: usize,
    trace: &mut TraceBuf,
) {
    let mut ready: Vec<WindowId> = open
        .iter()
        .filter(|(_, slot)| (0..spawned_workers).all(|w| excluded[w] || slot.1[w]))
        .map(|(&window, _)| window)
        .collect();
    ready.sort_unstable();
    for window in ready {
        let (partial, _, _) = open.remove(&window).expect("window is open");
        finalized.insert(window, partial);
        trace.push(trace_kind::WINDOW_CLOSE, window, 0, 0);
    }
}

/// Merges the stage reports of one run — however its stages were deployed,
/// threads in one process or processes on a network — into the final
/// [`EngineResult`] and merged window map.
///
/// `worker_reports` must be indexed by worker; aggregator reports may come
/// in any order (their window sets are disjoint by sharding, and the merge
/// is associative and commutative anyway). `source_reports` carry the sent
/// counts, the per-source elasticity decision logs
/// ([`ControllerMetrics::merged`] sorts them into the canonical
/// (source, window) order), and the sources' trace/transport shares; the
/// run's merged trace is sorted canonically and the per-stage transport
/// counters are summed here.
pub fn assemble_result<A>(
    plan: &StagePlan,
    aggregate: &A,
    source_reports: Vec<SourceStageReport>,
    worker_reports: Vec<WorkerStageReport>,
    aggregator_reports: Vec<AggregatorStageReport<A::Partial>>,
    elapsed_secs: f64,
) -> WindowedRun<A::Partial>
where
    A: WindowAggregate<KeyId>,
{
    let n_phases = plan.phases.len();
    let mut controller_events = Vec::new();
    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut transport = TransportStats::default();
    for report in source_reports {
        controller_events.extend(report.controller_events);
        trace.extend(report.trace);
        transport.source.merge(&report.transport);
    }
    let mut processed = 0u64;
    let mut worker_counts = Vec::with_capacity(plan.spawned_workers);
    let mut worker_state_keys = Vec::with_capacity(plan.spawned_workers);
    let mut worker_windows_closed = Vec::with_capacity(plan.spawned_workers);
    let mut phase_matrix = PhaseLoadMatrix::new(n_phases, plan.spawned_workers);
    let mut phase_latencies: Vec<Vec<LatencyTracker>> = (0..n_phases).map(|_| Vec::new()).collect();
    let mut phase_spans: Vec<Option<(u64, u64)>> = vec![None; n_phases];
    let mut worker_recovery = RecoveryMetrics::default();
    for (w, report) in worker_reports.into_iter().enumerate() {
        processed += report.processed;
        worker_counts.push(report.processed);
        worker_state_keys.push(report.state_keys);
        worker_windows_closed.push(report.windows_closed);
        worker_recovery = worker_recovery.merged(report.recovery);
        trace.extend(report.trace);
        transport.worker.merge(&report.transport);
        for (p, tracker) in report.phase_latencies.into_iter().enumerate() {
            phase_matrix.add(p, w, report.phase_counts[p]);
            phase_latencies[p].push(tracker);
        }
        for (p, span) in report.phase_spans.into_iter().enumerate() {
            if let Some((first, last)) = span {
                let merged_span = phase_spans[p].get_or_insert((first, last));
                merged_span.0 = merged_span.0.min(first);
                merged_span.1 = merged_span.1.max(last);
            }
        }
    }

    let mut windows: BTreeMap<WindowId, A::Partial> = BTreeMap::new();
    let mut aggregator_latencies = Vec::with_capacity(plan.aggregators);
    let mut partials_merged = 0u64;
    let mut partials_deduped = 0u64;
    let mut partials_transport_errors = 0u64;
    for report in aggregator_reports {
        partials_merged += report.merged;
        partials_deduped += report.duplicates_dropped;
        partials_transport_errors += report.transport_errors;
        trace.extend(report.trace);
        transport.aggregator.merge(&report.transport);
        aggregator_latencies.push(report.latencies);
        for (window, partial) in report.finalized {
            match windows.entry(window) {
                Entry::Vacant(slot) => {
                    slot.insert(partial);
                }
                Entry::Occupied(mut slot) => aggregate.merge(slot.get_mut(), partial),
            }
        }
    }
    // `<=`, not `==`: a worker excluded mid-run after exhausting its
    // respawn budget legitimately closes fewer windows than the run has
    // (its report is synthesized empty); no worker can ever close MORE.
    debug_assert!(
        worker_windows_closed
            .iter()
            .all(|&w| w <= windows.len() as u64),
        "no worker closes more windows than the run has"
    );

    // Grouped by worker across phases, so the "max avg" statistic keeps the
    // paper's per-worker semantics without copying every sample.
    let latency = LatencyTracker::summarize_by_worker(&phase_latencies);
    let mut latency_histogram = LogHistogram::new();
    for tracker in phase_latencies.iter().flatten() {
        latency_histogram.merge(tracker.histogram());
    }
    let throughput_eps = if elapsed_secs > 0.0 {
        processed as f64 / elapsed_secs
    } else {
        0.0
    };
    let phases_out: Vec<PhaseMetrics> = plan
        .phases
        .iter()
        .enumerate()
        .map(|(p, phase)| {
            let span_secs = phase_spans[p]
                .map(|(first, last)| last.saturating_sub(first) as f64 / 1e6)
                .unwrap_or(0.0);
            // With an elasticity controller the phase's configured worker
            // count is only the starting point — the controller may have
            // activated workers beyond it mid-phase — so the per-phase view
            // covers the whole spawned universe instead.
            let phase_width = if plan.controller.is_some() {
                plan.spawned_workers
            } else {
                phase.workers
            };
            PhaseMetrics {
                phase: p,
                workers: phase_width,
                start_window: phase.start_window,
                windows: phase.windows,
                worker_counts: phase_matrix.phase_counts(p)[..phase_width].to_vec(),
                imbalance: phase_matrix.phase_imbalance(p, phase_width),
                stage: StageMetrics::new(
                    phase_matrix.phase_total(p),
                    span_secs,
                    LatencyTracker::summarize(&phase_latencies[p]),
                ),
            }
        })
        .collect();
    let result = EngineResult {
        scheme: plan.kind.symbol().to_string(),
        skew: plan.skew,
        processed,
        elapsed_secs,
        throughput_eps,
        latency,
        imbalance: slb_core::imbalance(&worker_counts),
        worker_counts,
        worker_state_keys,
        window_size: plan.window_size,
        aggregators: plan.aggregators,
        windows: windows.len() as u64,
        phases: phases_out,
        worker_stage: StageMetrics::with_recovery(
            processed,
            elapsed_secs,
            latency,
            worker_recovery,
        ),
        aggregator_stage: StageMetrics::with_recovery(
            partials_merged,
            elapsed_secs,
            LatencyTracker::summarize(&aggregator_latencies),
            RecoveryMetrics {
                duplicates_dropped: partials_deduped,
                transport_errors: partials_transport_errors,
                ..RecoveryMetrics::default()
            },
        ),
        controller: ControllerMetrics::merged(controller_events),
        trace: {
            sort_canonical(&mut trace);
            trace
        },
        transport,
        latency_histogram,
    };
    WindowedRun { result, windows }
}

/// Executes a resolved plan over the given transport: the engine's single
/// in-process run loop, shared by the one-phase and scenario paths. Spawns
/// one thread per stage instance, each running the corresponding public
/// stage function, and assembles their reports.
fn run_plan<A, F, S, T>(
    plan: &StagePlan,
    streams: Arc<F>,
    aggregate: A,
    transport: &T,
) -> WindowedRun<A::Partial>
where
    A: WindowAggregate<KeyId>,
    A::Partial: WirePartial,
    F: Fn(usize, usize) -> S + Send + Sync + 'static,
    S: KeyStream + Clone + Send,
    T: Transport<A::Partial>,
{
    // The queue capacity is configured in tuples; the channels carry
    // batches, so convert through the one shared helper.
    let capacity_batches = capacity_in_batches(plan.queue_capacity, plan.batch_size);
    let (senders, receivers) = transport.tuple_channels(plan.spawned_workers, capacity_batches);
    let (partial_senders, partial_receivers) = transport.partial_channels(
        plan.aggregators,
        partial_channel_capacity(plan.spawned_workers),
    );
    let (feedback_senders, feedback_receivers) = transport.feedback_channels(
        plan.sources,
        feedback_channel_capacity(plan.spawned_workers),
    );
    // Transports that care about cache affinity (the SPSC backend) hand
    // back a deterministic thread → core map; each stage thread applies
    // its own pin, best-effort, as the first thing it does.
    let pinning = transport.core_pinning(plan.sources, plan.spawned_workers, plan.aggregators);

    let start = Instant::now();

    let mut aggregator_handles = Vec::with_capacity(plan.aggregators);
    for (agg_idx, receiver) in partial_receivers.into_iter().enumerate() {
        let aggregate = aggregate.clone();
        let workers = plan.spawned_workers;
        let telemetry = plan.telemetry;
        aggregator_handles.push(thread::spawn(move || {
            if let Some(p) = pinning {
                p.pin_current_thread(StageRole::Aggregator, agg_idx);
            }
            run_aggregator_stage(workers, &aggregate, receiver, agg_idx, telemetry)
        }));
    }

    let mut worker_handles = Vec::with_capacity(plan.spawned_workers);
    for (worker_idx, receiver) in receivers.into_iter().enumerate() {
        let plan = plan.clone();
        let aggregate = aggregate.clone();
        let partial_senders = partial_senders.clone();
        let feedback_senders = feedback_senders.clone();
        worker_handles.push(thread::spawn(move || {
            if let Some(p) = pinning {
                p.pin_current_thread(StageRole::Worker, worker_idx);
            }
            run_worker_stage_recoverable(
                &plan,
                worker_idx,
                start,
                &aggregate,
                receiver,
                &partial_senders,
                feedback_senders,
            )
        }));
    }
    // The workers hold their own clones of the partial and feedback
    // senders.
    drop(partial_senders);
    drop(feedback_senders);

    let mut source_handles = Vec::with_capacity(plan.sources);
    for (source_idx, feedback) in feedback_receivers.into_iter().enumerate() {
        let plan = plan.clone();
        let senders = senders.clone();
        let streams = streams.clone();
        source_handles.push(thread::spawn(move || {
            if let Some(p) = pinning {
                p.pin_current_thread(StageRole::Source, source_idx);
            }
            run_source_stage_recoverable(
                &plan,
                source_idx,
                |phase| (streams)(phase, source_idx),
                &senders,
                Some(feedback),
            )
        }));
    }
    // Drop the topology's own copies so workers terminate when sources do.
    drop(senders);

    let source_reports: Vec<SourceStageReport> = source_handles
        .into_iter()
        .map(|h| h.join().expect("source thread panicked"))
        .collect();
    let sent_total: u64 = source_reports.iter().map(|r| r.sent).sum();
    let worker_reports: Vec<WorkerStageReport> = worker_handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    let aggregator_reports: Vec<AggregatorStageReport<A::Partial>> = aggregator_handles
        .into_iter()
        .map(|h| h.join().expect("aggregator thread panicked"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();

    let processed: u64 = worker_reports.iter().map(|r| r.processed).sum();
    debug_assert_eq!(sent_total, processed, "every sent tuple must be processed");

    assemble_result(
        plan,
        &aggregate,
        source_reports,
        worker_reports,
        aggregator_reports,
        elapsed,
    )
}

/// Runs one engine experiment per grouping scheme in `schemes`, all on the
/// same workload, and returns the results in the same order.
pub fn compare_schemes(base: &EngineConfig, schemes: &[PartitionerKind]) -> Vec<EngineResult> {
    schemes
        .iter()
        .map(|&kind| {
            let mut cfg = base.clone();
            cfg.kind = kind;
            Topology::new(cfg).run()
        })
        .collect()
}

/// Runs one scenario per grouping scheme in `schemes`, all on the same
/// scenario spec, and returns the results in the same order.
pub fn compare_schemes_scenario(
    base: &ScenarioConfig,
    schemes: &[PartitionerKind],
) -> Vec<EngineResult> {
    schemes
        .iter()
        .map(|&kind| base.clone().with_kind(kind).run())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_core::{SumAggregate, TopKAggregate};
    use slb_sketch::FrequencyEstimator;
    use slb_workloads::ScenarioPhase;

    /// [`CountAggregate`]'s partial type, spelled once for the supervised
    /// stage tests that wire transports by hand.
    type CountPartial = std::collections::HashMap<KeyId, u64>;

    #[test]
    fn stage_plan_clamps_batch_size_to_queue_capacity() {
        // A queue bound below the batch size must win: batch 256 against a
        // queue of 8 used to buffer 2 × 256 tuples (the two-batch floor of
        // `capacity_in_batches`), 64× the requested bound.
        let plan = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
            .with_queue_capacity(8)
            .stage_plan();
        assert_eq!(plan.batch_size, 8);
        assert_eq!(capacity_in_batches(plan.queue_capacity, plan.batch_size), 2);
        // A roomy queue leaves the configured batch size alone.
        let plan = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
            .with_queue_capacity(1024)
            .stage_plan();
        assert_eq!(plan.batch_size, DEFAULT_BATCH_SIZE);
        // Equality is a no-op, not an off-by-one.
        let plan = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
            .with_batch_size(64)
            .with_queue_capacity(64)
            .stage_plan();
        assert_eq!(plan.batch_size, 64);
    }

    #[test]
    fn trace_is_deterministic_across_reruns_and_empty_when_disabled() {
        let topo = Topology::new(EngineConfig::smoke(PartitionerKind::Pkg, 1.2));
        let first = topo.run_windowed(CountAggregate).result;
        let second = topo.run_windowed(CountAggregate).result;
        assert!(!first.trace.is_empty());
        assert_eq!(first.trace, second.trace);
        // Every stage contributed: sources and aggregators log one
        // WINDOW_CLOSE per window, workers log one close + one checkpoint.
        for stage in [
            trace_stage::SOURCE,
            trace_stage::WORKER,
            trace_stage::AGGREGATOR,
        ] {
            assert!(
                first.trace.iter().any(|e| e.stage == stage),
                "stage {stage} missing from trace"
            );
        }
        // Transport counters saw the run's traffic.
        assert_eq!(first.transport.source.tuples_sent, first.processed);
        assert_eq!(first.transport.worker.tuples_received, first.processed);
        let off = topo.run_windowed_without_telemetry(CountAggregate).result;
        assert!(off.trace.is_empty());
        assert_eq!(off.transport, TransportStats::default());
        // Telemetry never changes the computation itself.
        assert_eq!(off.processed, first.processed);
        assert_eq!(off.worker_counts, first.worker_counts);
    }

    #[test]
    fn scenario_stage_plan_clamps_batch_size_to_queue_capacity() {
        let scenario = Scenario::new("clamp", 2, 128, 7).phase(ScenarioPhase::new(1, 100, 1.0, 2));
        let mut cfg = ScenarioConfig::new(PartitionerKind::Pkg, scenario);
        cfg.batch_size = 1000;
        cfg.queue_capacity = 32;
        assert_eq!(cfg.stage_plan().batch_size, 32);
    }

    #[test]
    fn clamped_batch_size_preserves_merged_windows() {
        // Shrinking the effective batch reshapes transport framing only:
        // merged window contents must be bit-identical to the default run.
        let base = EngineConfig::smoke(PartitionerKind::Pkg, 1.4).with_service_time_us(0);
        let small_queue =
            Topology::new(base.clone().with_queue_capacity(8)).run_windowed(CountAggregate);
        let default_queue = Topology::new(base).run_windowed(CountAggregate);
        assert_eq!(small_queue.windows, default_queue.windows);
        assert_eq!(small_queue.result.processed, default_queue.result.processed);
    }

    #[test]
    fn smoke_run_processes_every_message() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4);
        let result = Topology::new(cfg.clone()).run();
        assert_eq!(
            result.processed,
            (cfg.messages / cfg.sources as u64) * cfg.sources as u64
        );
        assert_eq!(result.worker_counts.len(), cfg.workers);
        assert!(result.throughput_eps > 0.0);
        assert!(result.latency.samples > 0);
        assert_eq!(result.latency.samples, result.processed);
        assert_eq!(result.scheme, "PKG");
        // The aggregation stage ran: every window finalized, one partial per
        // worker per shard per window merged.
        let per_source = cfg.messages / cfg.sources as u64;
        assert_eq!(result.windows, per_source.div_ceil(cfg.window_size));
        assert_eq!(
            result.aggregator_stage.items,
            result.windows * (cfg.workers * cfg.aggregators) as u64
        );
        assert!(result.aggregator_stage.latency.samples > 0);
        assert_eq!(result.worker_stage.items, result.processed);
    }

    #[test]
    fn single_phase_run_reports_one_phase_covering_the_whole_run() {
        let cfg = EngineConfig::smoke(PartitionerKind::DChoices, 1.6).with_service_time_us(0);
        let result = Topology::new(cfg.clone()).run();
        assert_eq!(result.phases.len(), 1);
        let phase = &result.phases[0];
        assert_eq!(phase.phase, 0);
        assert_eq!(phase.workers, cfg.workers);
        assert_eq!(phase.start_window, 0);
        assert_eq!(phase.stage.items, result.processed);
        assert_eq!(phase.worker_counts, result.worker_counts);
        assert!((phase.imbalance - result.imbalance).abs() < 1e-12);
        assert_eq!(phase.stage.latency.samples, result.latency.samples);
    }

    #[test]
    fn key_grouping_keeps_state_compact_but_unbalanced() {
        // Under heavy skew, KG holds each key on exactly one worker (minimal
        // state) but its processed-count imbalance is large compared to SG.
        let kg = Topology::new(EngineConfig::smoke(PartitionerKind::KeyGrouping, 2.0)).run();
        let sg = Topology::new(EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 2.0)).run();
        assert!(kg.imbalance > sg.imbalance);
        assert!(kg.total_state_replicas() <= sg.total_state_replicas());
    }

    #[test]
    fn w_choices_balances_better_than_pkg_under_extreme_skew() {
        let pkg = Topology::new(EngineConfig::smoke(PartitionerKind::Pkg, 2.0)).run();
        let wc = Topology::new(EngineConfig::smoke(PartitionerKind::WChoices, 2.0)).run();
        assert!(
            wc.imbalance <= pkg.imbalance + 1e-9,
            "W-C imbalance {} vs PKG {}",
            wc.imbalance,
            pkg.imbalance
        );
    }

    #[test]
    fn compare_schemes_returns_one_result_per_scheme() {
        let base = EngineConfig::smoke(PartitionerKind::Pkg, 1.4).with_messages(4_000);
        let results = compare_schemes(
            &base,
            &[
                PartitionerKind::KeyGrouping,
                PartitionerKind::ShuffleGrouping,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scheme, "KG");
        assert_eq!(results[1].scheme, "SG");
    }

    #[test]
    fn zero_service_time_is_supported() {
        let cfg = EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 1.0)
            .with_messages(8_000)
            .with_service_time_us(0);
        let r = Topology::new(cfg).run();
        assert_eq!(r.processed, 8_000);
    }

    #[test]
    fn partial_final_batches_are_flushed() {
        // A message count that is not a multiple of the batch size (and a
        // batch size larger than some workers' share) must still deliver
        // every tuple, with samples matching processed.
        for batch in [1usize, 3, 7, 256, 100_000] {
            let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
                .with_messages(10_001)
                .with_service_time_us(0)
                .with_batch_size(batch);
            let sources = cfg.sources as u64;
            let r = Topology::new(cfg).run();
            assert_eq!(r.processed, (10_001 / sources) * sources, "batch={batch}");
            assert_eq!(r.latency.samples, r.processed, "batch={batch}");
        }
    }

    #[test]
    fn batch_size_does_not_change_routing_decisions() {
        // The transport batch size is invisible to the grouping scheme: the
        // per-worker tuple counts and per-worker state footprints must be
        // identical whether tuples travel one at a time or 256 at a time.
        for kind in [
            PartitionerKind::Pkg,
            PartitionerKind::DChoices,
            PartitionerKind::ShuffleGrouping,
        ] {
            let base = EngineConfig::smoke(kind, 1.8)
                .with_messages(12_000)
                .with_service_time_us(0);
            let scalar = Topology::new(base.clone().with_batch_size(1)).run();
            let batched = Topology::new(base.with_batch_size(256)).run();
            assert_eq!(
                scalar.worker_counts, batched.worker_counts,
                "{kind:?} per-worker counts changed with batch size"
            );
            assert_eq!(
                scalar.worker_state_keys, batched.worker_state_keys,
                "{kind:?} per-worker state changed with batch size"
            );
        }
    }

    #[test]
    fn windowed_count_run_covers_every_tuple_once() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
            .with_service_time_us(0)
            .with_window_size(512);
        let per_source = cfg.messages / cfg.sources as u64;
        let sources = cfg.sources as u64;
        let run = Topology::new(cfg).run_windowed(CountAggregate);
        assert_eq!(run.windows.len() as u64, per_source.div_ceil(512));
        let total: u64 = run.windows.values().flat_map(|w| w.values()).sum();
        assert_eq!(total, run.result.processed);
        // Every full window carries sources × window_size tuples exactly.
        for (window, counts) in &run.windows {
            let tuples: u64 = counts.values().sum();
            if (window + 1) * 512 <= per_source {
                assert_eq!(tuples, 512 * sources, "window {window}");
            }
        }
    }

    #[test]
    fn windowed_sum_and_top_k_aggregates_run_end_to_end() {
        let cfg = EngineConfig::smoke(PartitionerKind::WChoices, 2.0)
            .with_messages(6_000)
            .with_service_time_us(0)
            .with_window_size(1_000);
        let sum = Topology::new(cfg.clone()).run_windowed(SumAggregate);
        let per_window: u64 = cfg.window_size * cfg.sources as u64;
        for (&window, &tuples) in &sum.windows {
            assert_eq!(tuples, per_window, "window {window}");
        }
        let topk = Topology::new(cfg.clone()).run_windowed(TopKAggregate::new(64));
        for summary in topk.windows.values() {
            assert_eq!(summary.total(), per_window);
            // Under z=2.0 the hottest key dominates; it must be monitored.
            assert!(summary.sorted_counters()[0].count > per_window / 10);
        }
    }

    #[test]
    fn aggregator_shard_count_does_not_change_merged_windows() {
        let base = EngineConfig::smoke(PartitionerKind::DChoices, 1.8)
            .with_messages(8_000)
            .with_service_time_us(0)
            .with_window_size(750);
        let one = Topology::new(base.clone().with_aggregators(1)).run_windowed(CountAggregate);
        let three = Topology::new(base.with_aggregators(3)).run_windowed(CountAggregate);
        assert_eq!(one.windows, three.windows);
    }

    /// A small scenario exercising scale-out, drift, heterogeneity, and a
    /// burst phase at test speed.
    fn small_scenario(seed: u64) -> Scenario {
        Scenario::new("unit", 2, 256, seed)
            .phase(ScenarioPhase::new(2, 400, 1.8, 3))
            .phase(
                ScenarioPhase::new(2, 400, 1.2, 5)
                    .with_drift_epochs(2)
                    .with_worker_speed(vec![2.0, 1.0, 1.0, 1.0, 1.0]),
            )
            .phase(
                ScenarioPhase::new(1, 200, 0.0, 2).with_arrival(Arrival::Bursty {
                    burst_tuples: 128,
                    pause_us: 10,
                }),
            )
    }

    #[test]
    fn scenario_run_processes_every_tuple_and_reports_phases() {
        let scenario = small_scenario(7);
        let expected = scenario.total_tuples();
        let result = ScenarioConfig::new(PartitionerKind::Pkg, scenario.clone()).run();
        assert_eq!(result.processed, expected);
        assert_eq!(result.phases.len(), 3);
        assert_eq!(result.worker_counts.len(), scenario.max_workers());
        assert_eq!(result.windows, scenario.total_windows());
        for (p, phase) in result.phases.iter().enumerate() {
            assert_eq!(phase.phase, p);
            assert_eq!(phase.workers, scenario.phases[p].workers);
            assert_eq!(phase.start_window, scenario.phase_start_window(p));
            assert_eq!(
                phase.stage.items,
                scenario.phase_tuples_per_source(p) * scenario.sources as u64
            );
            assert_eq!(phase.worker_counts.len(), phase.workers);
            assert_eq!(phase.stage.items, phase.worker_counts.iter().sum::<u64>());
            assert!(phase.imbalance >= 0.0);
        }
        let phase_total: u64 = result.phases.iter().map(|p| p.stage.items).sum();
        assert_eq!(phase_total, result.processed);
        assert_eq!(result.latency.samples, result.processed);
    }

    #[test]
    fn scenario_tuples_never_route_outside_the_active_set() {
        // Phase 2 scales in to 2 workers: the scale-in phase must route
        // nothing to workers 2..5 even though they were active in phase 1.
        let result = ScenarioConfig::new(PartitionerKind::WChoices, small_scenario(11)).run();
        let scale_in = &result.phases[2];
        assert_eq!(scale_in.workers, 2);
        assert_eq!(
            scale_in.worker_counts.iter().sum::<u64>(),
            scale_in.stage.items
        );
    }

    #[test]
    fn sub_batch_bursts_preserve_counts_and_windows() {
        // Bursts smaller than the transport batch cap the key-buffer chunks,
        // so every burst boundary is observed; routing, counts, and windows
        // must be identical to the steady run of the same spec.
        let steady =
            Scenario::single_phase("steady", 2, 256, 13, ScenarioPhase::new(3, 300, 1.6, 4));
        let mut bursty = steady.clone();
        bursty.phases[0].arrival = Arrival::Bursty {
            burst_tuples: 64, // default batch_size is 256
            pause_us: 1,
        };
        let a = ScenarioConfig::new(PartitionerKind::Pkg, steady).run_windowed(CountAggregate);
        let b = ScenarioConfig::new(PartitionerKind::Pkg, bursty).run_windowed(CountAggregate);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.result.worker_counts, b.result.worker_counts);
        assert_eq!(b.result.processed, 2 * 3 * 256);
    }

    #[test]
    fn scenario_reruns_are_deterministic() {
        let cfg = ScenarioConfig::new(PartitionerKind::DChoices, small_scenario(3));
        let a = cfg.run_windowed(CountAggregate);
        let b = cfg.run_windowed(CountAggregate);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.result.worker_counts, b.result.worker_counts);
        for (x, y) in a.result.phases.iter().zip(&b.result.phases) {
            assert_eq!(x.worker_counts, y.worker_counts);
            assert_eq!(x.imbalance.to_bits(), y.imbalance.to_bits());
        }
    }

    #[test]
    fn compare_schemes_scenario_labels_results() {
        let base = ScenarioConfig::new(PartitionerKind::Pkg, small_scenario(5));
        let results = compare_schemes_scenario(
            &base,
            &[PartitionerKind::KeyGrouping, PartitionerKind::WChoices],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scheme, "KG");
        assert_eq!(results[1].scheme, "W-C");
    }

    #[test]
    fn explicit_inproc_transport_matches_default_run() {
        // run_windowed_on(&InProc) is the same loop as run_windowed; counts
        // and windows must match exactly.
        let cfg = EngineConfig::smoke(PartitionerKind::DChoices, 1.8)
            .with_messages(8_000)
            .with_service_time_us(0);
        let implicit = Topology::new(cfg.clone()).run_windowed(CountAggregate);
        let explicit = Topology::new(cfg).run_windowed_on(CountAggregate, &InProc);
        assert_eq!(implicit.windows, explicit.windows);
        assert_eq!(implicit.result.worker_counts, explicit.result.worker_counts);
    }

    #[test]
    fn stage_plan_is_a_pure_function_of_the_config() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4);
        let a = cfg.stage_plan();
        let b = cfg.stage_plan();
        assert_eq!(a.phases.len(), 1);
        assert_eq!(a.phases[0].tuples_per_source, b.phases[0].tuples_per_source);
        assert_eq!(a.phases[0].windows, b.phases[0].windows);
        assert_eq!(a.spawned_workers, cfg.workers);
        let scenario_cfg = ScenarioConfig::new(PartitionerKind::WChoices, small_scenario(9));
        let plan = scenario_cfg.stage_plan();
        assert_eq!(plan.phases.len(), 3);
        assert_eq!(plan.spawned_workers, 5);
        assert_eq!(*plan.phase_starts, vec![0, 2, 4]);
    }

    #[test]
    fn recovery_counters_are_quiet_on_plain_runs() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4).with_service_time_us(0);
        let run = Topology::new(cfg).run_windowed(CountAggregate);
        assert!(run.result.worker_stage.recovery.is_quiet());
        assert_eq!(run.result.aggregator_stage.recovery.duplicates_dropped, 0);
    }

    #[test]
    fn no_fault_plan_is_bit_identical_to_plain_run() {
        let cfg = EngineConfig::smoke(PartitionerKind::DChoices, 1.8)
            .with_messages(8_000)
            .with_service_time_us(0);
        let plain = Topology::new(cfg.clone()).run_windowed(CountAggregate);
        let faulted =
            Topology::new(cfg).run_windowed_faulted_on(CountAggregate, &InProc, &FaultPlan::none());
        assert_eq!(plain.windows, faulted.windows);
        assert_eq!(plain.result.worker_counts, faulted.result.worker_counts);
        assert!(faulted.result.worker_stage.recovery.is_quiet());
    }

    #[test]
    fn killed_worker_recovers_to_identical_windows() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
            .with_messages(12_000)
            .with_service_time_us(0)
            .with_window_size(512);
        let clean = Topology::new(cfg.clone()).run_windowed(CountAggregate);
        let faults = FaultPlan::none().kill_worker(0, 700).kill_worker(1, 1_500);
        let hurt = Topology::new(cfg).run_windowed_faulted_on(CountAggregate, &InProc, &faults);
        assert_eq!(clean.windows, hurt.windows, "kill changed merged windows");
        assert_eq!(clean.result.worker_counts, hurt.result.worker_counts);
        assert_eq!(
            clean.result.worker_state_keys,
            hurt.result.worker_state_keys
        );
        let recovery = &hurt.result.worker_stage.recovery;
        assert_eq!(recovery.restores, 2, "both scheduled kills must fire");
        assert!(recovery.replay_requests > 0);
        // Closed windows are never re-finalized: recovery replays only the
        // open window, so the aggregator sees no duplicate partials.
        assert_eq!(hurt.result.aggregator_stage.recovery.duplicates_dropped, 0);
        // Timing-only trackers survive the simulated crash, so replayed
        // tuples add samples on top of the processed count.
        assert!(hurt.result.latency.samples >= hurt.result.processed);
    }

    #[test]
    fn dropped_connection_recovers_via_gap_replay() {
        let cfg = EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 1.2)
            .with_messages(10_000)
            .with_service_time_us(0)
            .with_batch_size(64);
        let clean = Topology::new(cfg.clone()).run_windowed(CountAggregate);
        let faults = FaultPlan::none().drop_connection(0, 1, 3, 2);
        let hurt = Topology::new(cfg).run_windowed_faulted_on(CountAggregate, &InProc, &faults);
        assert_eq!(clean.windows, hurt.windows, "loss changed merged windows");
        assert_eq!(clean.result.worker_counts, hurt.result.worker_counts);
        let recovery = &hurt.result.worker_stage.recovery;
        assert!(recovery.replay_requests > 0, "gap must request replay");
        assert!(recovery.replayed_items > 0, "replay must redeliver tuples");
        assert_eq!(recovery.restores, 0, "no worker was killed");
    }

    #[test]
    fn scenario_survives_faults_with_identical_windows() {
        let scenario = small_scenario(17);
        let cfg = ScenarioConfig::new(PartitionerKind::WChoices, scenario);
        let clean = cfg.run_windowed(CountAggregate);
        let faults = FaultPlan::none()
            .kill_worker(0, 150)
            .drop_connection(1, 1, 2, 1);
        let hurt = cfg.run_windowed_faulted_on(CountAggregate, &InProc, &faults);
        assert_eq!(clean.windows, hurt.windows);
        assert_eq!(clean.result.worker_counts, hurt.result.worker_counts);
        assert!(hurt.result.worker_stage.recovery.restores >= 1);
    }

    #[test]
    fn faulted_reruns_are_deterministic() {
        let cfg = EngineConfig::smoke(PartitionerKind::DChoices, 1.6)
            .with_messages(9_000)
            .with_service_time_us(0);
        let faults = FaultPlan::none()
            .kill_worker(2, 400)
            .drop_connection(1, 0, 1, 3);
        let a =
            Topology::new(cfg.clone()).run_windowed_faulted_on(CountAggregate, &InProc, &faults);
        let b = Topology::new(cfg).run_windowed_faulted_on(CountAggregate, &InProc, &faults);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.result.worker_counts, b.result.worker_counts);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn out_of_range_fault_plan_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0);
        let faults = FaultPlan::none().kill_worker(999, 10);
        let _ = Topology::new(cfg).run_windowed_faulted_on(CountAggregate, &InProc, &faults);
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn invalid_scenario_panics() {
        let scenario = Scenario::new("empty", 2, 64, 1); // no phases
        let _ = ScenarioConfig::new(PartitionerKind::Pkg, scenario).run();
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_panics() {
        let mut cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0);
        cfg.workers = 0;
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn zero_batch_size_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_batch_size(0);
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "windows need at least one tuple")]
    fn zero_window_size_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_window_size(0);
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn zero_aggregators_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_aggregators(0);
        let _ = Topology::new(cfg);
    }

    /// A single-source, single-worker supervised config whose entire stream
    /// (live + one full replay) fits in the bounded queue, so the test can
    /// drive the source from one thread without a draining peer.
    fn tiny_supervised_config() -> EngineConfig {
        let mut cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
            .with_messages(2_048)
            .with_service_time_us(0)
            .with_batch_size(64)
            .with_window_size(512);
        cfg.sources = 1;
        cfg.workers = 1;
        cfg.aggregators = 1;
        cfg.queue_capacity = 16_384;
        cfg
    }

    /// Drains messages from an in-proc receiver until `tuples` tuples and
    /// `closes` close markers have arrived, returning them in order.
    fn drain_exactly(
        receiver: &impl TupleReceiver,
        tuples: u64,
        closes: usize,
    ) -> Vec<SourceMessage> {
        let mut got = Vec::new();
        let mut tuple_count = 0u64;
        let mut close_count = 0usize;
        let mut buf = Vec::new();
        while tuple_count < tuples || close_count < closes {
            receiver.recv_batch(&mut buf).expect("stream stays open");
            for message in buf.drain(..) {
                match &message {
                    SourceMessage::Batch(batch) => tuple_count += batch.keys.len() as u64,
                    SourceMessage::CloseWindow { .. } => close_count += 1,
                }
                got.push(message);
            }
        }
        assert_eq!(tuple_count, tuples, "over-delivered tuples");
        assert_eq!(close_count, closes, "over-delivered closes");
        got
    }

    #[test]
    fn supervised_source_replays_full_history_on_rejoin() {
        let cfg = tiny_supervised_config();
        let plan = cfg.stage_plan();
        let windows = plan.total_windows() as usize;
        let (senders, receivers) = <InProc as Transport<CountPartial>>::tuple_channels(
            &InProc,
            1,
            capacity_in_batches(plan.queue_capacity, plan.batch_size),
        );
        let receiver = receivers.into_iter().next().unwrap();
        let (event_tx, event_rx) = crossbeam_channel::bounded(64);
        let reattached = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let reattached_in_source = reattached.clone();
        let stream_cfg = cfg.clone();
        let source = thread::spawn(move || {
            run_source_stage_supervised(
                &cfg.stage_plan(),
                0,
                |_phase| crate::windows::source_stream(&stream_cfg, 0),
                &senders,
                &event_rx,
                |worker| {
                    reattached_in_source.fetch_add(worker + 1, std::sync::atomic::Ordering::SeqCst);
                },
                None,
            )
        });
        // Live emission: the whole stream fits in the queue.
        let live = drain_exactly(&receiver, plan.phases[0].tuples_per_source, windows);
        // The source is now parked in its post-emission wait. A Rejoin from
        // sequence zero must reattach and re-deliver the entire history,
        // bit-for-bit: same sequences, same windows, same batches.
        event_tx
            .send(SourceControlEvent::Rejoin {
                worker: 0,
                from_seq: 0,
            })
            .unwrap();
        let replayed = drain_exactly(&receiver, plan.phases[0].tuples_per_source, windows);
        assert_eq!(reattached.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert_eq!(live.len(), replayed.len());
        for (a, b) in live.iter().zip(&replayed) {
            assert_eq!(a.source_seq(), b.source_seq());
            match (a, b) {
                (SourceMessage::Batch(x), SourceMessage::Batch(y)) => {
                    assert_eq!(x.keys, y.keys);
                    assert_eq!(x.window, y.window);
                }
                (
                    SourceMessage::CloseWindow { window: x, .. },
                    SourceMessage::CloseWindow { window: y, .. },
                ) => assert_eq!(x, y),
                _ => panic!("live and replayed message kinds diverge"),
            }
        }
        event_tx.send(SourceControlEvent::Release).unwrap();
        let sent = source.join().expect("source thread panicked").sent;
        // Replays are re-sends, not new tuples.
        assert_eq!(sent, plan.phases[0].tuples_per_source);
    }

    #[test]
    fn supervised_source_exclusion_reroutes_from_next_window_boundary() {
        let mut cfg = tiny_supervised_config();
        cfg.workers = 2;
        let plan = cfg.stage_plan();
        let windows = plan.total_windows();
        let (senders, receivers) = <InProc as Transport<CountPartial>>::tuple_channels(
            &InProc,
            2,
            capacity_in_batches(plan.queue_capacity, plan.batch_size),
        );
        let mut receivers = receivers.into_iter();
        let (rx0, rx1) = (receivers.next().unwrap(), receivers.next().unwrap());
        let (event_tx, event_rx) = crossbeam_channel::bounded(64);
        // Queued before the source starts: served at the first chunk,
        // applied at the first window boundary.
        event_tx
            .send(SourceControlEvent::Exclude { worker: 1 })
            .unwrap();
        event_tx.send(SourceControlEvent::Release).unwrap();
        let stream_cfg = cfg.clone();
        let source = thread::spawn(move || {
            run_source_stage_supervised(
                &cfg.stage_plan(),
                0,
                |_phase| crate::windows::source_stream(&stream_cfg, 0),
                &senders,
                &event_rx,
                |_| panic!("no rejoin in this test"),
                None,
            )
        });
        let sent = source.join().expect("source thread panicked").sent;
        assert_eq!(sent, plan.phases[0].tuples_per_source);
        // Worker 1 saw only window 0 (its exclusion landed at window 0's
        // boundary): batches and exactly one close, nothing later.
        let mut buf = Vec::new();
        let mut w1_tuples = 0u64;
        let mut w1_closes = 0usize;
        while TupleReceiver::recv_batch(&rx1, &mut buf).is_ok() {
            for message in buf.drain(..) {
                match message {
                    SourceMessage::Batch(batch) => {
                        assert_eq!(batch.window, 0, "excluded worker got a post-boundary batch");
                        w1_tuples += batch.keys.len() as u64;
                    }
                    SourceMessage::CloseWindow { window, .. } => {
                        assert_eq!(window, 0);
                        w1_closes += 1;
                    }
                }
            }
        }
        assert_eq!(w1_closes, 1);
        // Worker 0 saw everything else: all remaining tuples and every
        // window's close.
        let mut w0_tuples = 0u64;
        let mut w0_closes = 0usize;
        while TupleReceiver::recv_batch(&rx0, &mut buf).is_ok() {
            for message in buf.drain(..) {
                match message {
                    SourceMessage::Batch(batch) => w0_tuples += batch.keys.len() as u64,
                    SourceMessage::CloseWindow { .. } => w0_closes += 1,
                }
            }
        }
        assert_eq!(w0_closes as u64, windows);
        assert_eq!(w0_tuples + w1_tuples, plan.phases[0].tuples_per_source);
    }

    #[test]
    fn supervised_aggregator_finalizes_without_an_excluded_worker() {
        let aggregate = CountAggregate;
        let (partial_senders, partial_receivers) =
            <InProc as Transport<CountPartial>>::partial_channels(&InProc, 1, 16);
        let receiver = partial_receivers.into_iter().next().unwrap();
        let (exclude_tx, exclude_rx) = crossbeam_channel::bounded(16);
        let handle = thread::spawn(move || {
            run_aggregator_stage_supervised(
                2,
                3,
                &CountAggregate,
                receiver,
                &exclude_rx,
                0,
                true,
                None,
            )
        });
        let ship = |worker: usize, window: WindowId, key: KeyId, count: u64| {
            let mut partial = aggregate.empty();
            aggregate.observe(&mut partial, &key, count);
            partial_senders[0]
                .send(PartialWindow {
                    window,
                    worker,
                    partial,
                    closed_at: Instant::now(),
                })
                .unwrap();
        };
        // Worker 0 contributes every window; worker 1 dies after window 0.
        ship(0, 0, 7, 2);
        ship(1, 0, 7, 3);
        ship(0, 1, 7, 5);
        ship(0, 2, 9, 1);
        exclude_tx.send(1).unwrap();
        // Data-side progress follows the exclusion: close the queue.
        drop(partial_senders);
        let report = handle.join().expect("aggregator thread panicked");
        assert_eq!(report.finalized.len(), 3, "degraded windows must finalize");
        assert_eq!(report.merged, 4);
        assert_eq!(report.finalized[&0][&7], 5);
        assert_eq!(report.finalized[&1][&7], 5);
        assert_eq!(report.finalized[&2][&9], 1);
        assert_eq!(report.transport_errors, 0);
    }

    #[test]
    fn durable_worker_restores_from_checkpoint_and_dedups_replay() {
        let cfg = tiny_supervised_config();
        let plan = cfg.stage_plan();
        let windows = plan.total_windows();
        assert!(windows >= 2, "test needs at least two windows");
        let per_source = plan.phases[0].tuples_per_source;
        let start = Instant::now();
        // First life: run the full stream through a durable worker,
        // capturing every checkpoint the persist hook mirrors out.
        let checkpoints: Arc<std::sync::Mutex<Vec<Vec<u8>>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let run_once = |initial: Option<&WorkerCheckpoint>| {
            let (senders, receivers) = <InProc as Transport<CountPartial>>::tuple_channels(
                &InProc,
                1,
                capacity_in_batches(plan.queue_capacity, plan.batch_size),
            );
            let receiver = receivers.into_iter().next().unwrap();
            let (partial_senders, partial_receivers) =
                <InProc as Transport<CountPartial>>::partial_channels(
                    &InProc,
                    1,
                    partial_channel_capacity(1),
                );
            let partial_receiver = partial_receivers.into_iter().next().unwrap();
            let stream_cfg = cfg.clone();
            let source_plan = plan.clone();
            let source = thread::spawn(move || {
                run_source_stage(
                    &source_plan,
                    0,
                    |_phase| crate::windows::source_stream(&stream_cfg, 0),
                    &senders,
                )
            });
            let sink = thread::spawn(move || {
                let mut buf = Vec::new();
                let mut merged: BTreeMap<WindowId, u64> = BTreeMap::new();
                while PartialReceiver::recv_batch(&partial_receiver, &mut buf).is_ok() {
                    for pw in buf.drain(..) {
                        *merged.entry(pw.window).or_default() += pw.partial.values().sum::<u64>();
                    }
                }
                merged
            });
            let sink_checkpoints = checkpoints.clone();
            let report = run_worker_stage_durable(
                &plan,
                0,
                start,
                &CountAggregate,
                receiver,
                &partial_senders,
                initial,
                &mut |bytes: &[u8]| sink_checkpoints.lock().unwrap().push(bytes.to_vec()),
                None,
            );
            drop(partial_senders);
            source.join().expect("source thread panicked");
            (report, sink.join().expect("sink thread panicked"))
        };
        let (first_report, first_merged) = run_once(None);
        assert_eq!(first_report.processed, per_source);
        assert_eq!(first_report.windows_closed, windows);
        assert_eq!(first_report.recovery.restores, 0);
        let saved = checkpoints.lock().unwrap().clone();
        assert_eq!(saved.len() as u64, windows, "one persist per window close");
        // Second life: restore from the FIRST window's checkpoint and
        // replay the whole stream from sequence zero — everything below
        // the restored cursor must shed as duplicates, everything above
        // must process once, and the merged output must match.
        let checkpoint = WorkerCheckpoint::decode(&mut saved[0].as_slice())
            .expect("a worker's own checkpoint decodes");
        let (second_report, second_merged) = run_once(Some(&checkpoint));
        assert_eq!(second_report.recovery.restores, 1);
        assert_eq!(second_report.recovery.replay_requests, 1);
        assert!(second_report.recovery.duplicates_dropped > 0);
        assert_eq!(second_report.processed, per_source);
        assert_eq!(second_report.windows_closed, windows);
        // The restored life re-finalizes only the windows past its
        // checkpoint; merged window totals for those match the first life.
        for (window, total) in &second_merged {
            if *window >= 1 {
                assert_eq!(total, &first_merged[window], "window {window}");
            }
        }
    }
}
