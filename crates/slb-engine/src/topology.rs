//! The source → worker → aggregator topology and its runner.
//!
//! A [`Topology`] mirrors the paper's Storm application, now with all three
//! operators: a set of source threads generates a keyed stream and routes
//! every tuple through the grouping scheme under study; a set of worker
//! threads consumes the tuples from bounded input queues, performs a fixed
//! amount of CPU work per tuple (the first aggregation phase), and
//! accumulates per-key *partial* window state; a set of aggregator threads —
//! sharded by key hash — merges the workers' partials into the final
//! per-window result. Sources block when a worker's queue is full, which is
//! exactly the back-pressure behaviour that makes the most loaded worker the
//! throughput bottleneck; the aggregator stage is the reason key splitting
//! (PKG, D-Choices, W-Choices) is *sound*: it re-unifies the per-key state
//! the splitting scattered across workers.
//!
//! ## Batched transport
//!
//! Tuples move through the channels in [`EngineConfig::batch_size`]-sized
//! chunks, not one at a time. Sources route a buffer of keys with one
//! `route_batch` call, append each key to its destination worker's pending
//! batch, and ship the batch when it fills; each batch carries a single
//! emit timestamp, taken when its first tuple was buffered so that recorded
//! latency includes batch-fill wait. Workers drain whole runs of batches
//! under one lock acquisition via the channel's `recv_batch` path and
//! record one latency value per batch (latency is therefore quantized to
//! batch granularity, and conservatively so — per-tuple wait is never
//! understated).
//! Routing decisions are bit-for-bit identical to the tuple-at-a-time path
//! (see the `batch_equivalence` property tests in `slb-core`), so the
//! grouping-scheme comparison is unchanged while the per-tuple transport
//! cost (two Mutex+Condvar round-trips and two `Instant::now()` calls per
//! tuple) drops by roughly the batch size.
//!
//! ## Windows and punctuation
//!
//! Tuples are windowed by count per source sub-stream (see
//! [`crate::windows`]): the tuple at source position `i` belongs to window
//! `i / window_size`. A source never lets a transported batch span a window
//! boundary; when it finishes a window it flushes its in-flight batches and
//! broadcasts a close marker for that window to every worker. A worker that
//! has collected the marker from all sources finalizes its partial for the
//! window, splits it by key hash into one slice per aggregator shard
//! ([`WindowAggregate::shard`]), and ships the slices downstream — also in
//! batches, with one timestamp per partial, so the hot path stays
//! allocation-free. Aggregators merge slices as they arrive and declare a
//! window final once every worker has contributed, counting merges and
//! recording close→merge latency as the second stage's metrics.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::thread;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender};
use serde::{Deserialize, Serialize};

use slb_core::{
    build_partitioner, CountAggregate, PartitionConfig, PartitionerKind, WindowAggregate,
};
use slb_workloads::{KeyId, KeyStream};

use crate::latency::{LatencySummary, LatencyTracker, StageMetrics};
use crate::windows::{WindowId, WindowedRun};

/// Configuration of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// Number of source threads (the paper uses 48).
    pub sources: usize,
    /// Number of worker threads (the paper uses 80).
    pub workers: usize,
    /// Number of distinct keys in the synthetic workload (paper: 10⁴).
    pub keys: usize,
    /// Zipf exponent of the workload (paper: 1.4, 1.7, 2.0).
    pub skew: f64,
    /// Total number of messages across all sources (paper: 2×10⁶).
    pub messages: u64,
    /// Emulated CPU time per tuple at the worker, in microseconds
    /// (the paper uses 1000 µs = 1 ms; the default here is smaller so the
    /// full figure suite runs in minutes).
    pub service_time_us: u64,
    /// Capacity of each worker's input queue, in tuples.
    pub queue_capacity: usize,
    /// Seed for the workload and the hash functions.
    pub seed: u64,
    /// Number of tuples carried per channel message. Batch 1 reproduces the
    /// original tuple-at-a-time transport; the default of 256 amortizes the
    /// channel synchronization and timestamping cost across the batch.
    pub batch_size: usize,
    /// Tuples per window in each source sub-stream (window boundaries are
    /// deterministic: tuple `i` of a source belongs to window
    /// `i / window_size`).
    pub window_size: u64,
    /// Number of aggregator threads; the key space is sharded across them
    /// by key hash so the merge stage scales past one thread.
    pub aggregators: usize,
}

/// Default number of tuples per transported batch.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Default number of tuples per window in each source sub-stream.
pub const DEFAULT_WINDOW_SIZE: u64 = 4_096;

/// Default number of aggregator shards.
pub const DEFAULT_AGGREGATORS: usize = 2;

impl EngineConfig {
    /// A laptop-friendly configuration for the given scheme and skew:
    /// 4 sources, 8 workers, 10⁴ keys, 200k messages, 50 µs service time.
    pub fn laptop(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 4,
            workers: 8,
            keys: 10_000,
            skew,
            messages: 200_000,
            service_time_us: 50,
            queue_capacity: 1_024,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: DEFAULT_WINDOW_SIZE,
            aggregators: DEFAULT_AGGREGATORS,
        }
    }

    /// The paper's full-scale parameters (Figures 13–14): 48 sources,
    /// 80 workers, 10⁴ keys, 2×10⁶ messages, 1 ms of work per tuple.
    pub fn paper(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 48,
            workers: 80,
            keys: 10_000,
            skew,
            messages: 2_000_000,
            service_time_us: 1_000,
            queue_capacity: 1_024,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: 16_384,
            aggregators: 4,
        }
    }

    /// A tiny smoke-test configuration (a couple of seconds). The service
    /// time is chosen so that the workers — not the sources — are the
    /// bottleneck, as in the paper's saturated-cluster setup; otherwise the
    /// grouping scheme would have no effect on throughput or latency.
    pub fn smoke(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 2,
            workers: 4,
            keys: 1_000,
            skew,
            messages: 20_000,
            service_time_us: 25,
            queue_capacity: 128,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: 2_048,
            aggregators: DEFAULT_AGGREGATORS,
        }
    }

    /// Overrides the number of messages.
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Overrides the per-tuple service time (microseconds).
    pub fn with_service_time_us(mut self, us: u64) -> Self {
        self.service_time_us = us;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the transport batch size (tuples per channel message).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the window size (tuples per window per source sub-stream).
    pub fn with_window_size(mut self, window_size: u64) -> Self {
        self.window_size = window_size;
        self
    }

    /// Overrides the number of aggregator shards.
    pub fn with_aggregators(mut self, aggregators: usize) -> Self {
        self.aggregators = aggregators;
        self
    }
}

/// A batch of tuples in flight to one worker: the keys, the window they all
/// belong to (sources never let a batch span a boundary), and the single
/// timestamp taken when the batch's first tuple was buffered.
struct TupleBatch {
    keys: Vec<KeyId>,
    window: WindowId,
    emitted_at: Instant,
}

/// One message on a source → worker channel.
enum SourceMessage {
    /// A batch of same-window tuples.
    Batch(TupleBatch),
    /// Punctuation: the sending source has emitted every tuple it will ever
    /// emit for `window` (and has flushed the batches carrying them).
    CloseWindow { window: WindowId },
}

/// One worker's finalized partial aggregate for one window, sliced to one
/// aggregator shard's key range.
struct PartialWindow<P> {
    window: WindowId,
    partial: P,
    /// When the worker finalized the window (all close markers collected).
    closed_at: Instant,
}

/// Outcome of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineResult {
    /// Scheme symbol.
    pub scheme: String,
    /// Zipf exponent of the workload.
    pub skew: f64,
    /// Messages processed (across all workers).
    pub processed: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Throughput in events per second.
    pub throughput_eps: f64,
    /// End-to-end latency summary (source emit → worker completion).
    pub latency: LatencySummary,
    /// Per-worker processed-message counts (for imbalance auditing).
    pub worker_counts: Vec<u64>,
    /// Per-worker number of distinct keys held in state (memory footprint).
    pub worker_state_keys: Vec<u64>,
    /// Imbalance of the processed counts.
    pub imbalance: f64,
    /// Tuples per window per source sub-stream in this run.
    pub window_size: u64,
    /// Number of aggregator shards in this run.
    pub aggregators: usize,
    /// Number of windows finalized by the aggregator stage.
    pub windows: u64,
    /// Worker-stage metrics: tuples through the workers' queues (same data
    /// as `processed`/`throughput_eps`/`latency`, packaged per stage).
    pub worker_stage: StageMetrics,
    /// Aggregator-stage metrics: partial-window messages merged, and the
    /// worker-close → aggregator-merge latency distribution.
    pub aggregator_stage: StageMetrics,
}

impl EngineResult {
    /// Total distinct `(key, worker)` state replicas across workers.
    pub fn total_state_replicas(&self) -> u64 {
        self.worker_state_keys.iter().sum()
    }
}

/// Ships every non-empty pending batch for the given window downstream.
fn flush_pending(
    senders: &[Sender<SourceMessage>],
    pending: &mut [Vec<KeyId>],
    pending_since: &[Instant],
    window: WindowId,
    batch_size: usize,
    sent: &mut u64,
) {
    for (worker, buffer) in pending.iter_mut().enumerate() {
        if buffer.is_empty() {
            continue;
        }
        let keys = std::mem::replace(buffer, Vec::with_capacity(batch_size));
        *sent += keys.len() as u64;
        senders[worker]
            .send(SourceMessage::Batch(TupleBatch {
                keys,
                window,
                emitted_at: pending_since[worker],
            }))
            .expect("worker queue closed prematurely");
    }
}

/// The runnable topology.
pub struct Topology {
    config: EngineConfig,
}

impl Topology {
    /// Creates a topology from a configuration.
    ///
    /// # Panics
    /// Panics if any structural parameter is zero.
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.sources > 0, "need at least one source");
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.keys > 0, "need at least one key");
        assert!(config.queue_capacity > 0, "queues need capacity");
        assert!(config.batch_size > 0, "batches need at least one tuple");
        assert!(config.window_size > 0, "windows need at least one tuple");
        assert!(config.aggregators > 0, "need at least one aggregator");
        Self { config }
    }

    /// Runs the topology to completion with the default windowed count
    /// aggregation and returns the measurements (the per-window counts are
    /// computed and then discarded; use [`Self::run_windowed`] to keep them).
    pub fn run(&self) -> EngineResult {
        self.run_windowed(CountAggregate).result
    }

    /// Runs the topology to completion under the given windowed aggregation
    /// and returns the measurements together with the final merged
    /// per-window aggregates.
    pub fn run_windowed<A>(&self, aggregate: A) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
    {
        let cfg = &self.config;
        let batch_size = cfg.batch_size;
        // The queue capacity is configured in tuples; the channels carry
        // batches, so convert (rounding up). The floor of two keeps the
        // pipeline double-buffered — one batch being drained while the next
        // is in flight — even when the configured capacity is smaller than a
        // single batch; a floor of one serializes source and worker on the
        // same condvar hand-off.
        let capacity_batches = cfg.queue_capacity.div_ceil(batch_size).max(2);
        let (senders, receivers): (Vec<Sender<SourceMessage>>, Vec<Receiver<SourceMessage>>) = (0
            ..cfg.workers)
            .map(|_| bounded::<SourceMessage>(capacity_batches))
            .unzip();
        // Worker → aggregator channels carry one partial per closed window
        // per worker, so a couple of windows' worth of slots per worker is
        // plenty of double-buffering.
        type PartialChannel<P> = (
            Vec<Sender<PartialWindow<P>>>,
            Vec<Receiver<PartialWindow<P>>>,
        );
        let (partial_senders, partial_receivers): PartialChannel<A::Partial> = (0..cfg.aggregators)
            .map(|_| bounded::<PartialWindow<A::Partial>>(cfg.workers * 2 + 4))
            .unzip();

        let start = Instant::now();

        // Aggregator threads: merge partial-window slices as they arrive; a
        // window is final once every worker has contributed its slice.
        let mut aggregator_handles = Vec::with_capacity(cfg.aggregators);
        for receiver in partial_receivers {
            let aggregate = aggregate.clone();
            let workers = cfg.workers;
            aggregator_handles.push(thread::spawn(move || {
                let mut latencies = LatencyTracker::with_capacity(256);
                let mut merged = 0u64;
                let mut open: HashMap<WindowId, (A::Partial, usize)> = HashMap::new();
                let mut finalized: BTreeMap<WindowId, A::Partial> = BTreeMap::new();
                let mut drained: Vec<PartialWindow<A::Partial>> = Vec::new();
                while receiver.recv_batch(&mut drained, usize::MAX).is_ok() {
                    for pw in drained.drain(..) {
                        latencies.record_us(pw.closed_at.elapsed().as_micros() as u64);
                        merged += 1;
                        let slot = open
                            .entry(pw.window)
                            .or_insert_with(|| (aggregate.empty(), 0));
                        aggregate.merge(&mut slot.0, pw.partial);
                        slot.1 += 1;
                        if slot.1 == workers {
                            let (partial, _) = open.remove(&pw.window).expect("window is open");
                            finalized.insert(pw.window, partial);
                        }
                    }
                }
                debug_assert!(
                    open.is_empty(),
                    "every window must receive a partial from every worker"
                );
                (finalized, latencies, merged)
            }));
        }

        // Worker threads: drain whole runs of batches under one lock
        // acquisition, spin for the aggregate service time, update per-key
        // state and the open window's partial, record one latency value per
        // batch. Window close markers from all sources finalize a window:
        // its partial is sharded by key hash and shipped downstream.
        let mut worker_handles = Vec::with_capacity(cfg.workers);
        for receiver in receivers {
            let aggregate = aggregate.clone();
            let partial_senders = partial_senders.clone();
            let service_time = Duration::from_micros(cfg.service_time_us);
            let sources = cfg.sources;
            let aggregators = cfg.aggregators;
            worker_handles.push(thread::spawn(move || {
                let mut processed = 0u64;
                let mut latencies = LatencyTracker::with_capacity(4_096);
                // Distinct keys this worker has ever held state for (the
                // memory-footprint metric); the per-key counts themselves
                // live in the window partials.
                let mut state: std::collections::HashSet<KeyId> = std::collections::HashSet::new();
                let mut open: HashMap<WindowId, A::Partial> = HashMap::new();
                let mut closes: HashMap<WindowId, usize> = HashMap::new();
                let mut windows_closed = 0u64;
                let mut drained: Vec<SourceMessage> = Vec::new();
                while receiver.recv_batch(&mut drained, usize::MAX).is_ok() {
                    for message in drained.drain(..) {
                        match message {
                            SourceMessage::Batch(batch) => {
                                let n = batch.keys.len() as u64;
                                // Emulate the aggregation work with one
                                // busy-wait for the whole batch (n tuples'
                                // worth of service time): sleeping is far too
                                // coarse at microsecond granularity, and a
                                // per-tuple deadline would put two
                                // `Instant::now()` calls back on the per-tuple
                                // path.
                                if !service_time.is_zero() {
                                    let until = Instant::now() + service_time * n as u32;
                                    while Instant::now() < until {
                                        std::hint::spin_loop();
                                    }
                                }
                                let partial = open
                                    .entry(batch.window)
                                    .or_insert_with(|| aggregate.empty());
                                for key in &batch.keys {
                                    state.insert(*key);
                                    aggregate.observe(partial, key, 1);
                                }
                                let batch_latency_us =
                                    batch.emitted_at.elapsed().as_micros() as u64;
                                latencies.record_many_us(batch_latency_us, n);
                                processed += n;
                            }
                            SourceMessage::CloseWindow { window } => {
                                let seen = closes.entry(window).or_insert(0);
                                *seen += 1;
                                if *seen < sources {
                                    continue;
                                }
                                // Channels are FIFO per source, so with all
                                // sources' markers in hand this worker holds
                                // every tuple of the window that was routed
                                // to it: finalize and ship the shard slices.
                                closes.remove(&window);
                                let partial =
                                    open.remove(&window).unwrap_or_else(|| aggregate.empty());
                                let closed_at = Instant::now();
                                for (shard, slice) in aggregate
                                    .shard(partial, aggregators)
                                    .into_iter()
                                    .enumerate()
                                {
                                    partial_senders[shard]
                                        .send(PartialWindow {
                                            window,
                                            partial: slice,
                                            closed_at,
                                        })
                                        .expect("aggregator queue closed prematurely");
                                }
                                windows_closed += 1;
                            }
                        }
                    }
                }
                debug_assert!(
                    open.is_empty() && closes.is_empty(),
                    "all windows must be closed by end of stream"
                );
                (processed, latencies, state.len() as u64, windows_closed)
            }));
        }
        // The workers hold their own clones of the partial senders.
        drop(partial_senders);

        // Source threads: generate and route a buffer of keys at a time,
        // accumulate per-worker batches, ship each batch with a single
        // timestamp when it fills (blocking on full queues). A key buffer
        // never crosses a window boundary; at each boundary the source
        // flushes its in-flight batches and broadcasts the close marker.
        let window_size = cfg.window_size;
        let mut source_handles = Vec::with_capacity(cfg.sources);
        for source_idx in 0..cfg.sources {
            let senders = senders.clone();
            let kind = cfg.kind;
            let partition = PartitionConfig::new(cfg.workers).with_seed(cfg.seed);
            let workers = cfg.workers;
            // Each source generates an independent slice of the workload
            // over the shared key space (see `windows::source_stream`).
            let mut stream = crate::windows::source_stream(cfg, source_idx);
            source_handles.push(thread::spawn(move || {
                let mut partitioner = build_partitioner::<KeyId>(kind, &partition);
                let mut keybuf: Vec<KeyId> = Vec::with_capacity(batch_size);
                let mut routebuf: Vec<usize> = Vec::with_capacity(batch_size);
                let mut pending: Vec<Vec<KeyId>> = (0..workers)
                    .map(|_| Vec::with_capacity(batch_size))
                    .collect();
                // The batch's emit stamp is taken when its FIRST tuple is
                // buffered, not when the batch ships: a tuple's recorded
                // latency must include the time it waits for its batch to
                // fill, otherwise the slowest-filling destinations (exactly
                // the under-loaded workers of a skewed run) would report the
                // smallest latencies. First-push stamping over-approximates
                // for later tuples in the batch; it never understates.
                let mut pending_since: Vec<Instant> = vec![Instant::now(); workers];
                let mut sent = 0u64;
                let mut local_idx = 0u64;
                loop {
                    // Cap the buffer at the window's remaining tuples so a
                    // routed batch never spans a boundary.
                    let take = batch_size.min((window_size - local_idx % window_size) as usize);
                    keybuf.clear();
                    while keybuf.len() < take {
                        match KeyStream::next_key(&mut stream) {
                            Some(key) => keybuf.push(key),
                            None => break,
                        }
                    }
                    if keybuf.is_empty() {
                        break;
                    }
                    let window = crate::windows::window_of(local_idx, window_size);
                    partitioner.route_batch(&keybuf, &mut routebuf);
                    for (&key, &worker) in keybuf.iter().zip(&routebuf) {
                        if pending[worker].is_empty() {
                            pending_since[worker] = Instant::now();
                        }
                        pending[worker].push(key);
                        if pending[worker].len() == batch_size {
                            let keys = std::mem::replace(
                                &mut pending[worker],
                                Vec::with_capacity(batch_size),
                            );
                            sent += keys.len() as u64;
                            // A send only fails if the receiver is gone, which
                            // cannot happen before all senders are dropped;
                            // treat it as fatal.
                            senders[worker]
                                .send(SourceMessage::Batch(TupleBatch {
                                    keys,
                                    window,
                                    emitted_at: pending_since[worker],
                                }))
                                .expect("worker queue closed prematurely");
                        }
                    }
                    local_idx += keybuf.len() as u64;
                    if local_idx % window_size == 0 {
                        // Window complete: everything buffered belongs to it,
                        // so flush first, then broadcast the close marker.
                        flush_pending(
                            &senders,
                            &mut pending,
                            &pending_since,
                            window,
                            batch_size,
                            &mut sent,
                        );
                        for sender in &senders {
                            sender
                                .send(SourceMessage::CloseWindow { window })
                                .expect("worker queue closed prematurely");
                        }
                    }
                }
                // End of stream: flush and close the final partial window
                // (full windows were already closed at their boundary).
                if local_idx % window_size != 0 {
                    let window = crate::windows::window_of(local_idx, window_size);
                    flush_pending(
                        &senders,
                        &mut pending,
                        &pending_since,
                        window,
                        batch_size,
                        &mut sent,
                    );
                    for sender in &senders {
                        sender
                            .send(SourceMessage::CloseWindow { window })
                            .expect("worker queue closed prematurely");
                    }
                }
                sent
            }));
        }
        // Drop the topology's own copies so workers terminate when sources do.
        drop(senders);

        let mut sent_total = 0u64;
        for h in source_handles {
            sent_total += h.join().expect("source thread panicked");
        }
        let mut processed = 0u64;
        let mut latencies = Vec::with_capacity(cfg.workers);
        let mut worker_counts = Vec::with_capacity(cfg.workers);
        let mut worker_state_keys = Vec::with_capacity(cfg.workers);
        let mut worker_windows_closed = Vec::with_capacity(cfg.workers);
        for h in worker_handles {
            let (count, tracker, state_keys, windows_closed) =
                h.join().expect("worker thread panicked");
            processed += count;
            worker_counts.push(count);
            worker_state_keys.push(state_keys);
            worker_windows_closed.push(windows_closed);
            latencies.push(tracker);
        }
        debug_assert_eq!(sent_total, processed, "every sent tuple must be processed");

        let mut windows: BTreeMap<WindowId, A::Partial> = BTreeMap::new();
        let mut aggregator_latencies = Vec::with_capacity(cfg.aggregators);
        let mut partials_merged = 0u64;
        for h in aggregator_handles {
            let (finalized, tracker, merged) = h.join().expect("aggregator thread panicked");
            partials_merged += merged;
            aggregator_latencies.push(tracker);
            for (window, partial) in finalized {
                match windows.entry(window) {
                    Entry::Vacant(slot) => {
                        slot.insert(partial);
                    }
                    Entry::Occupied(mut slot) => aggregate.merge(slot.get_mut(), partial),
                }
            }
        }
        debug_assert!(
            worker_windows_closed
                .iter()
                .all(|&w| w == windows.len() as u64),
            "every worker closes every window exactly once"
        );

        let elapsed = start.elapsed().as_secs_f64();
        let latency = LatencyTracker::summarize(&latencies);
        let throughput_eps = if elapsed > 0.0 {
            processed as f64 / elapsed
        } else {
            0.0
        };
        let result = EngineResult {
            scheme: cfg.kind.symbol().to_string(),
            skew: cfg.skew,
            processed,
            elapsed_secs: elapsed,
            throughput_eps,
            latency,
            imbalance: slb_core::imbalance(&worker_counts),
            worker_counts,
            worker_state_keys,
            window_size: cfg.window_size,
            aggregators: cfg.aggregators,
            windows: windows.len() as u64,
            worker_stage: StageMetrics::new(processed, elapsed, latency),
            aggregator_stage: StageMetrics::new(
                partials_merged,
                elapsed,
                LatencyTracker::summarize(&aggregator_latencies),
            ),
        };
        WindowedRun { result, windows }
    }
}

/// Runs one engine experiment per grouping scheme in `schemes`, all on the
/// same workload, and returns the results in the same order.
pub fn compare_schemes(base: &EngineConfig, schemes: &[PartitionerKind]) -> Vec<EngineResult> {
    schemes
        .iter()
        .map(|&kind| {
            let mut cfg = base.clone();
            cfg.kind = kind;
            Topology::new(cfg).run()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_core::{SumAggregate, TopKAggregate};
    use slb_sketch::FrequencyEstimator;

    #[test]
    fn smoke_run_processes_every_message() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4);
        let result = Topology::new(cfg.clone()).run();
        assert_eq!(
            result.processed,
            (cfg.messages / cfg.sources as u64) * cfg.sources as u64
        );
        assert_eq!(result.worker_counts.len(), cfg.workers);
        assert!(result.throughput_eps > 0.0);
        assert!(result.latency.samples > 0);
        assert_eq!(result.latency.samples, result.processed);
        assert_eq!(result.scheme, "PKG");
        // The aggregation stage ran: every window finalized, one partial per
        // worker per shard per window merged.
        let per_source = cfg.messages / cfg.sources as u64;
        assert_eq!(result.windows, per_source.div_ceil(cfg.window_size));
        assert_eq!(
            result.aggregator_stage.items,
            result.windows * (cfg.workers * cfg.aggregators) as u64
        );
        assert!(result.aggregator_stage.latency.samples > 0);
        assert_eq!(result.worker_stage.items, result.processed);
    }

    #[test]
    fn key_grouping_keeps_state_compact_but_unbalanced() {
        // Under heavy skew, KG holds each key on exactly one worker (minimal
        // state) but its processed-count imbalance is large compared to SG.
        let kg = Topology::new(EngineConfig::smoke(PartitionerKind::KeyGrouping, 2.0)).run();
        let sg = Topology::new(EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 2.0)).run();
        assert!(kg.imbalance > sg.imbalance);
        assert!(kg.total_state_replicas() <= sg.total_state_replicas());
    }

    #[test]
    fn w_choices_balances_better_than_pkg_under_extreme_skew() {
        let pkg = Topology::new(EngineConfig::smoke(PartitionerKind::Pkg, 2.0)).run();
        let wc = Topology::new(EngineConfig::smoke(PartitionerKind::WChoices, 2.0)).run();
        assert!(
            wc.imbalance <= pkg.imbalance + 1e-9,
            "W-C imbalance {} vs PKG {}",
            wc.imbalance,
            pkg.imbalance
        );
    }

    #[test]
    fn compare_schemes_returns_one_result_per_scheme() {
        let base = EngineConfig::smoke(PartitionerKind::Pkg, 1.4).with_messages(4_000);
        let results = compare_schemes(
            &base,
            &[
                PartitionerKind::KeyGrouping,
                PartitionerKind::ShuffleGrouping,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scheme, "KG");
        assert_eq!(results[1].scheme, "SG");
    }

    #[test]
    fn zero_service_time_is_supported() {
        let cfg = EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 1.0)
            .with_messages(8_000)
            .with_service_time_us(0);
        let r = Topology::new(cfg).run();
        assert_eq!(r.processed, 8_000);
    }

    #[test]
    fn partial_final_batches_are_flushed() {
        // A message count that is not a multiple of the batch size (and a
        // batch size larger than some workers' share) must still deliver
        // every tuple, with samples matching processed.
        for batch in [1usize, 3, 7, 256, 100_000] {
            let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
                .with_messages(10_001)
                .with_service_time_us(0)
                .with_batch_size(batch);
            let sources = cfg.sources as u64;
            let r = Topology::new(cfg).run();
            assert_eq!(r.processed, (10_001 / sources) * sources, "batch={batch}");
            assert_eq!(r.latency.samples, r.processed, "batch={batch}");
        }
    }

    #[test]
    fn batch_size_does_not_change_routing_decisions() {
        // The transport batch size is invisible to the grouping scheme: the
        // per-worker tuple counts and per-worker state footprints must be
        // identical whether tuples travel one at a time or 256 at a time.
        for kind in [
            PartitionerKind::Pkg,
            PartitionerKind::DChoices,
            PartitionerKind::ShuffleGrouping,
        ] {
            let base = EngineConfig::smoke(kind, 1.8)
                .with_messages(12_000)
                .with_service_time_us(0);
            let scalar = Topology::new(base.clone().with_batch_size(1)).run();
            let batched = Topology::new(base.with_batch_size(256)).run();
            assert_eq!(
                scalar.worker_counts, batched.worker_counts,
                "{kind:?} per-worker counts changed with batch size"
            );
            assert_eq!(
                scalar.worker_state_keys, batched.worker_state_keys,
                "{kind:?} per-worker state changed with batch size"
            );
        }
    }

    #[test]
    fn windowed_count_run_covers_every_tuple_once() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
            .with_service_time_us(0)
            .with_window_size(512);
        let per_source = cfg.messages / cfg.sources as u64;
        let sources = cfg.sources as u64;
        let run = Topology::new(cfg).run_windowed(CountAggregate);
        assert_eq!(run.windows.len() as u64, per_source.div_ceil(512));
        let total: u64 = run.windows.values().flat_map(|w| w.values()).sum();
        assert_eq!(total, run.result.processed);
        // Every full window carries sources × window_size tuples exactly.
        for (window, counts) in &run.windows {
            let tuples: u64 = counts.values().sum();
            if (window + 1) * 512 <= per_source {
                assert_eq!(tuples, 512 * sources, "window {window}");
            }
        }
    }

    #[test]
    fn windowed_sum_and_top_k_aggregates_run_end_to_end() {
        let cfg = EngineConfig::smoke(PartitionerKind::WChoices, 2.0)
            .with_messages(6_000)
            .with_service_time_us(0)
            .with_window_size(1_000);
        let sum = Topology::new(cfg.clone()).run_windowed(SumAggregate);
        let per_window: u64 = cfg.window_size * cfg.sources as u64;
        for (&window, &tuples) in &sum.windows {
            assert_eq!(tuples, per_window, "window {window}");
        }
        let topk = Topology::new(cfg.clone()).run_windowed(TopKAggregate::new(64));
        for summary in topk.windows.values() {
            assert_eq!(summary.total(), per_window);
            // Under z=2.0 the hottest key dominates; it must be monitored.
            assert!(summary.sorted_counters()[0].count > per_window / 10);
        }
    }

    #[test]
    fn aggregator_shard_count_does_not_change_merged_windows() {
        let base = EngineConfig::smoke(PartitionerKind::DChoices, 1.8)
            .with_messages(8_000)
            .with_service_time_us(0)
            .with_window_size(750);
        let one = Topology::new(base.clone().with_aggregators(1)).run_windowed(CountAggregate);
        let three = Topology::new(base.with_aggregators(3)).run_windowed(CountAggregate);
        assert_eq!(one.windows, three.windows);
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_panics() {
        let mut cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0);
        cfg.workers = 0;
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn zero_batch_size_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_batch_size(0);
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "windows need at least one tuple")]
    fn zero_window_size_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_window_size(0);
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn zero_aggregators_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_aggregators(0);
        let _ = Topology::new(cfg);
    }
}
