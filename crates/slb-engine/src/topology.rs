//! The source → worker → aggregator topology and its phased runner.
//!
//! A [`Topology`] mirrors the paper's Storm application, now with all three
//! operators: a set of source threads generates a keyed stream and routes
//! every tuple through the grouping scheme under study; a set of worker
//! threads consumes the tuples from bounded input queues, performs a fixed
//! amount of CPU work per tuple (the first aggregation phase), and
//! accumulates per-key *partial* window state; a set of aggregator threads —
//! sharded by key hash — merges the workers' partials into the final
//! per-window result. Sources block when a worker's queue is full, which is
//! exactly the back-pressure behaviour that makes the most loaded worker the
//! throughput bottleneck; the aggregator stage is the reason key splitting
//! (PKG, D-Choices, W-Choices) is *sound*: it re-unifies the per-key state
//! the splitting scattered across workers.
//!
//! ## Pluggable transport
//!
//! The run loop is generic over a [`Transport`], the factory of the
//! channels tuples and partials travel through (see [`crate::transport`]).
//! The default is [`InProc`] — bounded crossbeam channels, the engine's
//! original plumbing — and `slb-net` provides a TCP backend that carries the
//! same hops over loopback sockets and across process boundaries. Each stage
//! of the topology is exposed as a standalone function
//! ([`run_source_stage`], [`run_worker_stage`], [`run_aggregator_stage`]) so
//! a multi-process deployment can run exactly the code this in-process
//! runner threads together; [`assemble_result`] merges the stages' reports
//! into an [`EngineResult`] on either side.
//!
//! ## Phased execution
//!
//! The run loop is phased: internally every run is a sequence of *phases*,
//! each fixing the key distribution, arrival pattern, active worker count,
//! and per-worker service-time multipliers. A plain [`EngineConfig`] run is
//! the one-phase special case; a [`ScenarioConfig`] run executes a
//! [`Scenario`] with as many phases as the spec declares. At each phase
//! boundary every source regenerates its partitioner for the phase's worker
//! count ([`slb_core::Partitioner::rescale`]) and switches to the phase's
//! key stream. Worker threads are spawned for the *maximum* worker count up
//! front; phases activate a prefix of them, and inactive workers merely
//! relay window punctuation, so the aggregation invariant ("every worker
//! contributes one partial per window") is preserved across scale-out and
//! scale-in. Phases are aligned to window boundaries by construction (see
//! `slb-workloads::scenario`), so no window ever mixes two routing regimes.
//!
//! ## Batched transport
//!
//! Tuples move through the channels in [`EngineConfig::batch_size`]-sized
//! chunks, not one at a time. Sources route a buffer of keys with one
//! `route_batch` call, append each key to its destination worker's pending
//! batch, and ship the batch when it fills; each batch carries a single
//! emit timestamp, taken when its first tuple was buffered so that recorded
//! latency includes batch-fill wait. Workers drain whole runs of batches
//! under one lock acquisition via the channel's `recv_batch` path and
//! record one latency value per batch (latency is therefore quantized to
//! batch granularity, and conservatively so — per-tuple wait is never
//! understated).
//! Routing decisions are bit-for-bit identical to the tuple-at-a-time path
//! (see the `batch_equivalence` property tests in `slb-core`), so the
//! grouping-scheme comparison is unchanged while the per-tuple transport
//! cost (two Mutex+Condvar round-trips and two `Instant::now()` calls per
//! tuple) drops by roughly the batch size.
//!
//! ## Windows and punctuation
//!
//! Tuples are windowed by count per source sub-stream (see
//! [`crate::windows`]): the tuple at source position `i` belongs to window
//! `i / window_size`. A source never lets a transported batch span a window
//! boundary; when it finishes a window it flushes its in-flight batches and
//! broadcasts a close marker for that window to every worker. A worker that
//! has collected the marker from all sources finalizes its partial for the
//! window, splits it by key hash into one slice per aggregator shard
//! ([`WindowAggregate::shard`]), and ships the slices downstream — also in
//! batches, with one timestamp per partial, so the hot path stays
//! allocation-free. Aggregators merge slices as they arrive and declare a
//! window final once every worker has contributed, counting merges and
//! recording close→merge latency as the second stage's metrics.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use slb_core::{
    build_partitioner, CountAggregate, PartitionConfig, Partitioner, PartitionerKind,
    PhaseLoadMatrix, WindowAggregate,
};
use slb_workloads::{Arrival, KeyId, KeyStream, Scenario};

use crate::latency::{LatencySummary, LatencyTracker, PhaseMetrics, StageMetrics};
use crate::transport::{
    capacity_in_batches, partial_channel_capacity, InProc, PartialReceiver, PartialSender,
    PartialWindow, SourceMessage, Transport, TupleBatch, TupleReceiver, TupleSender,
};
use crate::windows::{window_of, WindowId, WindowedRun};

/// Configuration of one single-phase engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// Number of source threads (the paper uses 48).
    pub sources: usize,
    /// Number of worker threads (the paper uses 80).
    pub workers: usize,
    /// Number of distinct keys in the synthetic workload (paper: 10⁴).
    pub keys: usize,
    /// Zipf exponent of the workload (paper: 1.4, 1.7, 2.0).
    pub skew: f64,
    /// Total number of messages across all sources (paper: 2×10⁶).
    pub messages: u64,
    /// Emulated CPU time per tuple at the worker, in microseconds
    /// (the paper uses 1000 µs = 1 ms; the default here is smaller so the
    /// full figure suite runs in minutes).
    pub service_time_us: u64,
    /// Capacity of each worker's input queue, in tuples. Every transport
    /// backend derives its buffering from this one knob (see
    /// [`capacity_in_batches`]).
    pub queue_capacity: usize,
    /// Seed for the workload and the hash functions.
    pub seed: u64,
    /// Number of tuples carried per channel message. Batch 1 reproduces the
    /// original tuple-at-a-time transport; the default of 256 amortizes the
    /// channel synchronization and timestamping cost across the batch.
    pub batch_size: usize,
    /// Tuples per window in each source sub-stream (window boundaries are
    /// deterministic: tuple `i` of a source belongs to window
    /// `i / window_size`).
    pub window_size: u64,
    /// Number of aggregator threads; the key space is sharded across them
    /// by key hash so the merge stage scales past one thread.
    pub aggregators: usize,
}

/// Default number of tuples per transported batch.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Default number of tuples per window in each source sub-stream.
pub const DEFAULT_WINDOW_SIZE: u64 = 4_096;

/// Default number of aggregator shards.
pub const DEFAULT_AGGREGATORS: usize = 2;

/// Default capacity of each worker's input queue, in tuples.
pub const DEFAULT_QUEUE_CAPACITY: usize = 1_024;

impl EngineConfig {
    /// A laptop-friendly configuration for the given scheme and skew:
    /// 4 sources, 8 workers, 10⁴ keys, 200k messages, 50 µs service time.
    pub fn laptop(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 4,
            workers: 8,
            keys: 10_000,
            skew,
            messages: 200_000,
            service_time_us: 50,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: DEFAULT_WINDOW_SIZE,
            aggregators: DEFAULT_AGGREGATORS,
        }
    }

    /// The paper's full-scale parameters (Figures 13–14): 48 sources,
    /// 80 workers, 10⁴ keys, 2×10⁶ messages, 1 ms of work per tuple.
    pub fn paper(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 48,
            workers: 80,
            keys: 10_000,
            skew,
            messages: 2_000_000,
            service_time_us: 1_000,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: 16_384,
            aggregators: 4,
        }
    }

    /// A tiny smoke-test configuration (a couple of seconds). The service
    /// time is chosen so that the workers — not the sources — are the
    /// bottleneck, as in the paper's saturated-cluster setup; otherwise the
    /// grouping scheme would have no effect on throughput or latency.
    pub fn smoke(kind: PartitionerKind, skew: f64) -> Self {
        Self {
            kind,
            sources: 2,
            workers: 4,
            keys: 1_000,
            skew,
            messages: 20_000,
            service_time_us: 25,
            queue_capacity: 128,
            seed: 42,
            batch_size: DEFAULT_BATCH_SIZE,
            window_size: 2_048,
            aggregators: DEFAULT_AGGREGATORS,
        }
    }

    /// Overrides the number of messages.
    pub fn with_messages(mut self, messages: u64) -> Self {
        self.messages = messages;
        self
    }

    /// Overrides the per-tuple service time (microseconds).
    pub fn with_service_time_us(mut self, us: u64) -> Self {
        self.service_time_us = us;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the transport batch size (tuples per channel message).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the per-worker queue capacity (tuples).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the window size (tuples per window per source sub-stream).
    pub fn with_window_size(mut self, window_size: u64) -> Self {
        self.window_size = window_size;
        self
    }

    /// Overrides the number of aggregator shards.
    pub fn with_aggregators(mut self, aggregators: usize) -> Self {
        self.aggregators = aggregators;
        self
    }

    /// Asserts the structural invariants every run entry point relies on.
    ///
    /// # Panics
    /// Panics if any structural parameter is zero.
    pub fn validate(&self) {
        assert!(self.sources > 0, "need at least one source");
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.keys > 0, "need at least one key");
        assert!(self.queue_capacity > 0, "queues need capacity");
        assert!(self.batch_size > 0, "batches need at least one tuple");
        assert!(self.window_size > 0, "windows need at least one tuple");
        assert!(self.aggregators > 0, "need at least one aggregator");
    }

    /// Resolves this configuration into the one-phase [`StagePlan`] every
    /// execution backend (threads or processes) runs.
    ///
    /// # Panics
    /// Panics if [`Self::validate`] does.
    pub fn stage_plan(&self) -> StagePlan {
        self.validate();
        let per_source = self.messages / self.sources as u64;
        let phase = PhasePlan {
            tuples_per_source: per_source,
            start_window: 0,
            // 0 for a degenerate messages < sources config, matching the
            // run's actual (empty) window set.
            windows: per_source.div_ceil(self.window_size),
            workers: self.workers,
            service: Arc::new(vec![
                Duration::from_micros(self.service_time_us);
                self.workers
            ]),
            arrival: Arrival::Steady,
        };
        StagePlan {
            kind: self.kind,
            seed: self.seed,
            skew: self.skew,
            sources: self.sources,
            spawned_workers: self.workers,
            window_size: self.window_size,
            batch_size: self.batch_size,
            queue_capacity: self.queue_capacity,
            aggregators: self.aggregators,
            phase_starts: Arc::new(vec![0]),
            phases: Arc::new(vec![phase]),
        }
    }
}

/// Configuration of a multi-phase scenario run: the [`Scenario`] supplies
/// the workload, phase lengths, worker counts, and speed multipliers; this
/// struct adds the engine-side knobs (base service time, transport, shards).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// The multi-phase workload and cluster description.
    pub scenario: Scenario,
    /// Base emulated CPU time per tuple, microseconds; each phase's
    /// per-worker multipliers scale it ([`slb_workloads::ScenarioPhase::worker_speed`]).
    pub service_time_us: u64,
    /// Capacity of each worker's input queue, in tuples.
    pub queue_capacity: usize,
    /// Tuples per transported channel message.
    pub batch_size: usize,
    /// Number of aggregator shards.
    pub aggregators: usize,
}

impl ScenarioConfig {
    /// Creates a scenario run configuration with default engine knobs and
    /// zero base service time (pure routing/transport; set a service time to
    /// study saturation behaviour).
    pub fn new(kind: PartitionerKind, scenario: Scenario) -> Self {
        Self {
            kind,
            scenario,
            service_time_us: 0,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            batch_size: DEFAULT_BATCH_SIZE,
            aggregators: DEFAULT_AGGREGATORS,
        }
    }

    /// Overrides the grouping scheme.
    pub fn with_kind(mut self, kind: PartitionerKind) -> Self {
        self.kind = kind;
        self
    }

    /// Overrides the base per-tuple service time (microseconds).
    pub fn with_service_time_us(mut self, us: u64) -> Self {
        self.service_time_us = us;
        self
    }

    /// Overrides the per-worker queue capacity (tuples).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the transport batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the number of aggregator shards.
    pub fn with_aggregators(mut self, aggregators: usize) -> Self {
        self.aggregators = aggregators;
        self
    }

    /// Resolves this configuration into the multi-phase [`StagePlan`] every
    /// execution backend runs.
    ///
    /// # Panics
    /// Panics if the scenario or the engine knobs are invalid.
    pub fn stage_plan(&self) -> StagePlan {
        if let Err(message) = self.scenario.validate() {
            panic!("invalid scenario: {message}");
        }
        assert!(self.queue_capacity > 0, "queues need capacity");
        assert!(self.batch_size > 0, "batches need at least one tuple");
        assert!(self.aggregators > 0, "need at least one aggregator");
        let scenario = &self.scenario;
        let base_us = self.service_time_us;
        let spawned = scenario.max_workers();
        let phases: Vec<PhasePlan> = scenario
            .phases
            .iter()
            .enumerate()
            .map(|(p, phase)| PhasePlan {
                tuples_per_source: scenario.phase_tuples_per_source(p),
                start_window: scenario.phase_start_window(p),
                windows: phase.windows,
                workers: phase.workers,
                service: Arc::new(
                    (0..spawned)
                        .map(|w| Duration::from_secs_f64(base_us as f64 * phase.speed_of(w) / 1e6))
                        .collect(),
                ),
                arrival: phase.arrival,
            })
            .collect();
        StagePlan {
            kind: self.kind,
            seed: scenario.seed,
            skew: scenario.phases[0].skew,
            sources: scenario.sources,
            spawned_workers: spawned,
            window_size: scenario.window_size,
            batch_size: self.batch_size,
            queue_capacity: self.queue_capacity,
            aggregators: self.aggregators,
            phase_starts: Arc::new(phases.iter().map(|p| p.start_window).collect()),
            phases: Arc::new(phases),
        }
    }

    /// Runs the scenario with the default windowed count aggregation,
    /// discarding the per-window counts.
    ///
    /// # Panics
    /// Panics if the scenario or the engine knobs are invalid.
    pub fn run(&self) -> EngineResult {
        self.run_windowed(CountAggregate).result
    }

    /// Runs the scenario under the given windowed aggregation on the
    /// in-process transport and returns the measurements together with the
    /// merged per-window aggregates.
    ///
    /// # Panics
    /// Panics if the scenario or the engine knobs are invalid.
    pub fn run_windowed<A>(&self, aggregate: A) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
    {
        self.run_windowed_on(aggregate, &InProc)
    }

    /// Runs the scenario under the given windowed aggregation over the given
    /// [`Transport`] backend.
    ///
    /// # Panics
    /// Panics if the scenario or the engine knobs are invalid.
    pub fn run_windowed_on<A, T>(&self, aggregate: A, transport: &T) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        T: Transport<A::Partial>,
    {
        let plan = self.stage_plan();
        let scenario = self.scenario.clone();
        let streams =
            Arc::new(move |phase: usize, source: usize| scenario.phase_stream(phase, source));
        run_plan(&plan, streams, aggregate, transport)
    }
}

/// Outcome of one engine run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineResult {
    /// Scheme symbol.
    pub scheme: String,
    /// Zipf exponent of the workload (first phase's, for scenario runs).
    pub skew: f64,
    /// Messages processed (across all workers).
    pub processed: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Throughput in events per second.
    pub throughput_eps: f64,
    /// End-to-end latency summary (source emit → worker completion).
    pub latency: LatencySummary,
    /// Per-worker processed-message counts over the spawned worker universe
    /// (for imbalance auditing).
    pub worker_counts: Vec<u64>,
    /// Per-worker number of distinct keys held in state (memory footprint).
    pub worker_state_keys: Vec<u64>,
    /// Imbalance of the processed counts over the spawned universe. For
    /// multi-phase runs with worker-count changes, prefer the per-phase
    /// imbalance in [`Self::phases`], which is evaluated over each phase's
    /// active worker set.
    pub imbalance: f64,
    /// Tuples per window per source sub-stream in this run.
    pub window_size: u64,
    /// Number of aggregator shards in this run.
    pub aggregators: usize,
    /// Number of windows finalized by the aggregator stage.
    pub windows: u64,
    /// Per-phase measurements; exactly one entry for plain
    /// [`EngineConfig`] runs.
    pub phases: Vec<PhaseMetrics>,
    /// Worker-stage metrics: tuples through the workers' queues (same data
    /// as `processed`/`throughput_eps`/`latency`, packaged per stage).
    pub worker_stage: StageMetrics,
    /// Aggregator-stage metrics: partial-window messages merged, and the
    /// worker-close → aggregator-merge latency distribution.
    pub aggregator_stage: StageMetrics,
}

impl EngineResult {
    /// Total distinct `(key, worker)` state replicas across workers.
    pub fn total_state_replicas(&self) -> u64 {
        self.worker_state_keys.iter().sum()
    }
}

/// One phase of a run plan, fully resolved for execution.
#[derive(Debug, Clone)]
pub struct PhasePlan {
    /// Tuples each source emits during the phase.
    pub tuples_per_source: u64,
    /// Global index of the phase's first window.
    pub start_window: WindowId,
    /// Windows the phase covers per source.
    pub windows: u64,
    /// Active workers during the phase.
    pub workers: usize,
    /// Resolved per-worker service time (base × multiplier), indexed over
    /// the spawned worker universe.
    pub service: Arc<Vec<Duration>>,
    /// Arrival pacing within the phase.
    pub arrival: Arrival,
}

/// The fully resolved execution plan shared by every stage of a run — the
/// pure-data part (the key streams travel separately, as a factory, so the
/// per-tuple hot path stays monomorphized over each caller's concrete
/// stream type; a boxed `dyn KeyStream` costs a measurable ~10% of
/// zero-service throughput).
///
/// A `StagePlan` is cheap to clone (the phase tables are shared `Arc`s) and
/// is a pure function of the originating [`EngineConfig`] or
/// [`ScenarioConfig`], so every process of a distributed run can resolve the
/// same plan locally from the same config.
#[derive(Debug, Clone)]
pub struct StagePlan {
    /// Grouping scheme under study.
    pub kind: PartitionerKind,
    /// Seed for the workload and the hash functions.
    pub seed: u64,
    /// Zipf exponent reported in the result (first phase's, for scenarios).
    pub skew: f64,
    /// Number of sources.
    pub sources: usize,
    /// Workers spawned up front (phases activate a prefix).
    pub spawned_workers: usize,
    /// Tuples per window per source sub-stream.
    pub window_size: u64,
    /// Tuples per transported channel message.
    pub batch_size: usize,
    /// Capacity of each worker's input queue, in tuples.
    pub queue_capacity: usize,
    /// Number of aggregator shards.
    pub aggregators: usize,
    /// Start-window table, indexed by phase (for window → phase lookup).
    pub phase_starts: Arc<Vec<WindowId>>,
    /// One resolved plan per phase.
    pub phases: Arc<Vec<PhasePlan>>,
}

/// Ships every non-empty pending batch for the given window downstream.
fn flush_pending<Tx: TupleSender>(
    senders: &[Tx],
    pending: &mut [Vec<KeyId>],
    pending_since: &[Instant],
    window: WindowId,
    batch_size: usize,
    sent: &mut u64,
) {
    for (worker, buffer) in pending.iter_mut().enumerate() {
        if buffer.is_empty() {
            continue;
        }
        let keys = std::mem::replace(buffer, Vec::with_capacity(batch_size));
        *sent += keys.len() as u64;
        senders[worker]
            .send(SourceMessage::Batch(TupleBatch {
                keys,
                window,
                emitted_at: pending_since[worker],
            }))
            .expect("worker queue closed prematurely");
    }
}

/// The phase that `window` belongs to, via the phase start-window table.
#[inline]
fn phase_of(starts: &[WindowId], window: WindowId) -> usize {
    starts.partition_point(|&s| s <= window) - 1
}

/// The runnable topology (one-phase [`EngineConfig`] front-end; see
/// [`ScenarioConfig`] for multi-phase runs).
pub struct Topology {
    config: EngineConfig,
}

impl Topology {
    /// Creates a topology from a configuration.
    ///
    /// # Panics
    /// Panics if any structural parameter is zero
    /// ([`EngineConfig::validate`]).
    pub fn new(config: EngineConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Runs the topology to completion with the default windowed count
    /// aggregation and returns the measurements (the per-window counts are
    /// computed and then discarded; use [`Self::run_windowed`] to keep them).
    pub fn run(&self) -> EngineResult {
        self.run_windowed(CountAggregate).result
    }

    /// Runs the topology to completion under the given windowed aggregation
    /// on the in-process transport and returns the measurements together
    /// with the final merged per-window aggregates.
    pub fn run_windowed<A>(&self, aggregate: A) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
    {
        self.run_windowed_on(aggregate, &InProc)
    }

    /// Runs the topology to completion under the given windowed aggregation
    /// over the given [`Transport`] backend.
    pub fn run_windowed_on<A, T>(&self, aggregate: A, transport: &T) -> WindowedRun<A::Partial>
    where
        A: WindowAggregate<KeyId>,
        T: Transport<A::Partial>,
    {
        let plan = self.config.stage_plan();
        let cfg = self.config.clone();
        let streams = Arc::new(move |_phase: usize, source: usize| {
            crate::windows::source_stream(&cfg, source)
        });
        run_plan(&plan, streams, aggregate, transport)
    }
}

/// Everything one source contributes to a run: generates and routes its
/// sub-stream phase by phase, ships batches and punctuation through
/// `senders` (one per spawned worker), and returns how many tuples it sent.
///
/// `stream_for_phase(p)` must yield *this source's* key stream for phase
/// `p` (callers close over their source index); the engine and `slb-node`
/// both construct it from the shared config so every backend emits the
/// identical stream.
///
/// # Panics
/// Panics if a send fails (a worker endpoint disappeared mid-run).
pub fn run_source_stage<S, Tx>(
    plan: &StagePlan,
    mut stream_for_phase: impl FnMut(usize) -> S,
    senders: &[Tx],
) -> u64
where
    S: KeyStream,
    Tx: TupleSender,
{
    let batch_size = plan.batch_size;
    let window_size = plan.window_size;
    let mut partitioner: Option<Box<dyn Partitioner<KeyId>>> = None;
    let mut keybuf: Vec<KeyId> = Vec::with_capacity(batch_size);
    let mut routebuf: Vec<usize> = Vec::with_capacity(batch_size);
    let mut pending: Vec<Vec<KeyId>> = (0..senders.len())
        .map(|_| Vec::with_capacity(batch_size))
        .collect();
    // The batch's emit stamp is taken when its FIRST tuple is
    // buffered, not when the batch ships: a tuple's recorded
    // latency must include the time it waits for its batch to
    // fill, otherwise the slowest-filling destinations (exactly
    // the under-loaded workers of a skewed run) would report the
    // smallest latencies. First-push stamping over-approximates
    // for later tuples in the batch; it never understates.
    let mut pending_since: Vec<Instant> = vec![Instant::now(); senders.len()];
    let mut sent = 0u64;
    let mut local_idx = 0u64;
    'phases: for (phase_idx, phase) in plan.phases.iter().enumerate() {
        // Phase boundary: regenerate the routing state for the
        // phase's worker count. Build on first use, rescale in
        // place afterwards — bit-for-bit equivalent to a fresh
        // build (see slb-core's rescale_props suite).
        let partition = PartitionConfig::new(phase.workers).with_seed(plan.seed);
        match partitioner.as_mut() {
            None => partitioner = Some(build_partitioner::<KeyId>(plan.kind, &partition)),
            Some(part) => part.rescale(&partition),
        }
        let part = partitioner.as_mut().expect("partitioner built above");
        let mut stream = stream_for_phase(phase_idx);
        let mut emitted = 0u64;
        while emitted < phase.tuples_per_source {
            // Cap the buffer at the window's (and phase's)
            // remaining tuples so a routed batch never spans a
            // boundary; in a bursty phase, also at the burst's
            // remaining tuples so every burst boundary is observed
            // even when bursts are smaller than the batch size.
            let mut take = (batch_size as u64)
                .min(window_size - local_idx % window_size)
                .min(phase.tuples_per_source - emitted);
            if let Arrival::Bursty { burst_tuples, .. } = phase.arrival {
                take = take.min(burst_tuples - emitted % burst_tuples);
            }
            let take = take as usize;
            keybuf.clear();
            while keybuf.len() < take {
                match stream.next_key() {
                    Some(key) => keybuf.push(key),
                    None => break,
                }
            }
            if keybuf.is_empty() {
                // Stream dried up early (possible only for the
                // one-phase path, whose stream bounds the budget).
                break 'phases;
            }
            let window = window_of(local_idx, window_size);
            part.route_batch(&keybuf, &mut routebuf);
            for (&key, &worker) in keybuf.iter().zip(&routebuf) {
                if pending[worker].is_empty() {
                    pending_since[worker] = Instant::now();
                }
                pending[worker].push(key);
                if pending[worker].len() == batch_size {
                    let keys =
                        std::mem::replace(&mut pending[worker], Vec::with_capacity(batch_size));
                    sent += keys.len() as u64;
                    // A send only fails if the receiver is gone, which
                    // cannot happen before all senders are dropped;
                    // treat it as fatal.
                    senders[worker]
                        .send(SourceMessage::Batch(TupleBatch {
                            keys,
                            window,
                            emitted_at: pending_since[worker],
                        }))
                        .expect("worker queue closed prematurely");
                }
            }
            let chunk = keybuf.len() as u64;
            local_idx += chunk;
            emitted += chunk;
            if local_idx % window_size == 0 {
                // Window complete: everything buffered belongs to it,
                // so flush first, then broadcast the close marker.
                flush_pending(
                    senders,
                    &mut pending,
                    &pending_since,
                    window,
                    batch_size,
                    &mut sent,
                );
                for sender in senders {
                    sender
                        .send(SourceMessage::CloseWindow { window })
                        .expect("worker queue closed prematurely");
                }
            }
            // Burst pacing: chunks never span a burst boundary (the
            // `take` cap above), so exactly one pause fires per
            // completed burst. Pacing shapes timing only; routing
            // and counts are untouched.
            if let Arrival::Bursty {
                burst_tuples,
                pause_us,
            } = phase.arrival
            {
                if pause_us > 0 && emitted % burst_tuples == 0 && emitted < phase.tuples_per_source
                {
                    thread::sleep(Duration::from_micros(pause_us));
                }
            }
        }
    }
    // End of stream: flush and close the final partial window
    // (full windows were already closed at their boundary; phases
    // always end on a boundary, so this fires only when the
    // one-phase path's message count does not divide evenly).
    if local_idx % window_size != 0 {
        let window = window_of(local_idx, window_size);
        flush_pending(
            senders,
            &mut pending,
            &pending_since,
            window,
            batch_size,
            &mut sent,
        );
        for sender in senders {
            sender
                .send(SourceMessage::CloseWindow { window })
                .expect("worker queue closed prematurely");
        }
    }
    sent
}

/// What one worker reports after draining its input channel: counts,
/// state footprint, per-phase latency trackers, and per-phase activity
/// spans as `(first, last)` microseconds since the run epoch (an
/// `Instant`-free representation, so reports can cross process boundaries).
#[derive(Debug, Clone, Default)]
pub struct WorkerStageReport {
    /// Tuples processed.
    pub processed: u64,
    /// Tuples processed per phase.
    pub phase_counts: Vec<u64>,
    /// Per-phase latency samples.
    pub phase_latencies: Vec<LatencyTracker>,
    /// Distinct keys this worker ever held state for.
    pub state_keys: u64,
    /// Windows this worker finalized (must equal the run's window count).
    pub windows_closed: u64,
    /// Per-phase `(first, last)` batch-completion instants, µs since epoch.
    pub phase_spans: Vec<Option<(u64, u64)>>,
}

/// Everything one worker contributes to a run: drains whole runs of batches
/// from `receiver`, spins for the phase's per-worker service time,
/// accumulates per-window partial aggregates, and — once every source's
/// close marker for a window has arrived — shards the window's partial and
/// ships the slices through `partial_senders` (one per aggregator).
///
/// `epoch` anchors the report's span timestamps; pass the instant the run
/// started (the same epoch on every node of a distributed run).
///
/// # Panics
/// Panics if a partial send fails (an aggregator endpoint disappeared).
pub fn run_worker_stage<A, Rx, Tx>(
    plan: &StagePlan,
    worker_idx: usize,
    epoch: Instant,
    aggregate: &A,
    receiver: Rx,
    partial_senders: &[Tx],
) -> WorkerStageReport
where
    A: WindowAggregate<KeyId>,
    Rx: TupleReceiver,
    Tx: PartialSender<A::Partial>,
{
    let n_phases = plan.phases.len();
    let sources = plan.sources;
    let aggregators = plan.aggregators;
    let mut processed = 0u64;
    let mut phase_counts = vec![0u64; n_phases];
    let mut phase_latencies: Vec<LatencyTracker> = (0..n_phases)
        .map(|_| LatencyTracker::with_capacity(1_024))
        .collect();
    // First/last batch-completion instants per phase, for the
    // per-phase throughput span.
    let mut phase_spans: Vec<Option<(u64, u64)>> = vec![None; n_phases];
    // Distinct keys this worker has ever held state for (the
    // memory-footprint metric); the per-key counts themselves
    // live in the window partials.
    let mut state: std::collections::HashSet<KeyId> = std::collections::HashSet::new();
    let mut open: HashMap<WindowId, A::Partial> = HashMap::new();
    let mut closes: HashMap<WindowId, usize> = HashMap::new();
    let mut windows_closed = 0u64;
    let mut drained: Vec<SourceMessage> = Vec::new();
    while receiver.recv_batch(&mut drained).is_ok() {
        for message in drained.drain(..) {
            match message {
                SourceMessage::Batch(batch) => {
                    let n = batch.keys.len() as u64;
                    let phase = phase_of(&plan.phase_starts, batch.window);
                    let service = plan.phases[phase].service[worker_idx];
                    // Emulate the aggregation work with one
                    // busy-wait for the whole batch (n tuples'
                    // worth of service time): sleeping is far too
                    // coarse at microsecond granularity, and a
                    // per-tuple deadline would put two
                    // `Instant::now()` calls back on the per-tuple
                    // path.
                    if !service.is_zero() {
                        let until = Instant::now() + service * n as u32;
                        while Instant::now() < until {
                            std::hint::spin_loop();
                        }
                    }
                    let partial = open
                        .entry(batch.window)
                        .or_insert_with(|| aggregate.empty());
                    for key in &batch.keys {
                        state.insert(*key);
                        aggregate.observe(partial, key, 1);
                    }
                    let done = Instant::now();
                    let batch_latency_us = done.duration_since(batch.emitted_at).as_micros() as u64;
                    phase_latencies[phase].record_many_us(batch_latency_us, n);
                    phase_counts[phase] += n;
                    processed += n;
                    let done_us = done.saturating_duration_since(epoch).as_micros() as u64;
                    let span = phase_spans[phase].get_or_insert((done_us, done_us));
                    span.1 = done_us;
                }
                SourceMessage::CloseWindow { window } => {
                    let seen = closes.entry(window).or_insert(0);
                    *seen += 1;
                    if *seen < sources {
                        continue;
                    }
                    // Channels are FIFO per source, so with all
                    // sources' markers in hand this worker holds
                    // every tuple of the window that was routed
                    // to it: finalize and ship the shard slices.
                    closes.remove(&window);
                    let partial = open.remove(&window).unwrap_or_else(|| aggregate.empty());
                    let closed_at = Instant::now();
                    for (shard, slice) in aggregate
                        .shard(partial, aggregators)
                        .into_iter()
                        .enumerate()
                    {
                        partial_senders[shard]
                            .send(PartialWindow {
                                window,
                                partial: slice,
                                closed_at,
                            })
                            .expect("aggregator queue closed prematurely");
                    }
                    windows_closed += 1;
                }
            }
        }
    }
    debug_assert!(
        open.is_empty() && closes.is_empty(),
        "all windows must be closed by end of stream"
    );
    WorkerStageReport {
        processed,
        phase_counts,
        phase_latencies,
        state_keys: state.len() as u64,
        windows_closed,
        phase_spans,
    }
}

/// What one aggregator reports: the windows it finalized, the close→merge
/// latency distribution, and how many partial messages it merged.
pub struct AggregatorStageReport<P> {
    /// Final merged aggregate per window this shard owned.
    pub finalized: BTreeMap<WindowId, P>,
    /// Close→merge latency samples.
    pub latencies: LatencyTracker,
    /// Partial-window messages merged.
    pub merged: u64,
}

/// Everything one aggregator contributes to a run: merges partial-window
/// slices from `receiver` as they arrive; a window is final once every one
/// of the `spawned_workers` workers has contributed its slice.
pub fn run_aggregator_stage<A, Rx>(
    spawned_workers: usize,
    aggregate: &A,
    receiver: Rx,
) -> AggregatorStageReport<A::Partial>
where
    A: WindowAggregate<KeyId>,
    Rx: PartialReceiver<A::Partial>,
{
    let mut latencies = LatencyTracker::with_capacity(256);
    let mut merged = 0u64;
    let mut open: HashMap<WindowId, (A::Partial, usize)> = HashMap::new();
    let mut finalized: BTreeMap<WindowId, A::Partial> = BTreeMap::new();
    let mut drained: Vec<PartialWindow<A::Partial>> = Vec::new();
    while receiver.recv_batch(&mut drained).is_ok() {
        for pw in drained.drain(..) {
            latencies.record_us(pw.closed_at.elapsed().as_micros() as u64);
            merged += 1;
            let slot = open
                .entry(pw.window)
                .or_insert_with(|| (aggregate.empty(), 0));
            aggregate.merge(&mut slot.0, pw.partial);
            slot.1 += 1;
            if slot.1 == spawned_workers {
                let (partial, _) = open.remove(&pw.window).expect("window is open");
                finalized.insert(pw.window, partial);
            }
        }
    }
    debug_assert!(
        open.is_empty(),
        "every window must receive a partial from every worker"
    );
    AggregatorStageReport {
        finalized,
        latencies,
        merged,
    }
}

/// Merges the stage reports of one run — however its stages were deployed,
/// threads in one process or processes on a network — into the final
/// [`EngineResult`] and merged window map.
///
/// `worker_reports` must be indexed by worker; aggregator reports may come
/// in any order (their window sets are disjoint by sharding, and the merge
/// is associative and commutative anyway).
pub fn assemble_result<A>(
    plan: &StagePlan,
    aggregate: &A,
    worker_reports: Vec<WorkerStageReport>,
    aggregator_reports: Vec<AggregatorStageReport<A::Partial>>,
    elapsed_secs: f64,
) -> WindowedRun<A::Partial>
where
    A: WindowAggregate<KeyId>,
{
    let n_phases = plan.phases.len();
    let mut processed = 0u64;
    let mut worker_counts = Vec::with_capacity(plan.spawned_workers);
    let mut worker_state_keys = Vec::with_capacity(plan.spawned_workers);
    let mut worker_windows_closed = Vec::with_capacity(plan.spawned_workers);
    let mut phase_matrix = PhaseLoadMatrix::new(n_phases, plan.spawned_workers);
    let mut phase_latencies: Vec<Vec<LatencyTracker>> = (0..n_phases).map(|_| Vec::new()).collect();
    let mut phase_spans: Vec<Option<(u64, u64)>> = vec![None; n_phases];
    for (w, report) in worker_reports.into_iter().enumerate() {
        processed += report.processed;
        worker_counts.push(report.processed);
        worker_state_keys.push(report.state_keys);
        worker_windows_closed.push(report.windows_closed);
        for (p, tracker) in report.phase_latencies.into_iter().enumerate() {
            phase_matrix.add(p, w, report.phase_counts[p]);
            phase_latencies[p].push(tracker);
        }
        for (p, span) in report.phase_spans.into_iter().enumerate() {
            if let Some((first, last)) = span {
                let merged_span = phase_spans[p].get_or_insert((first, last));
                merged_span.0 = merged_span.0.min(first);
                merged_span.1 = merged_span.1.max(last);
            }
        }
    }

    let mut windows: BTreeMap<WindowId, A::Partial> = BTreeMap::new();
    let mut aggregator_latencies = Vec::with_capacity(plan.aggregators);
    let mut partials_merged = 0u64;
    for report in aggregator_reports {
        partials_merged += report.merged;
        aggregator_latencies.push(report.latencies);
        for (window, partial) in report.finalized {
            match windows.entry(window) {
                Entry::Vacant(slot) => {
                    slot.insert(partial);
                }
                Entry::Occupied(mut slot) => aggregate.merge(slot.get_mut(), partial),
            }
        }
    }
    debug_assert!(
        worker_windows_closed
            .iter()
            .all(|&w| w == windows.len() as u64),
        "every worker closes every window exactly once"
    );

    // Grouped by worker across phases, so the "max avg" statistic keeps the
    // paper's per-worker semantics without copying every sample.
    let latency = LatencyTracker::summarize_by_worker(&phase_latencies);
    let throughput_eps = if elapsed_secs > 0.0 {
        processed as f64 / elapsed_secs
    } else {
        0.0
    };
    let phases_out: Vec<PhaseMetrics> = plan
        .phases
        .iter()
        .enumerate()
        .map(|(p, phase)| {
            let span_secs = phase_spans[p]
                .map(|(first, last)| last.saturating_sub(first) as f64 / 1e6)
                .unwrap_or(0.0);
            PhaseMetrics {
                phase: p,
                workers: phase.workers,
                start_window: phase.start_window,
                windows: phase.windows,
                worker_counts: phase_matrix.phase_counts(p)[..phase.workers].to_vec(),
                imbalance: phase_matrix.phase_imbalance(p, phase.workers),
                stage: StageMetrics::new(
                    phase_matrix.phase_total(p),
                    span_secs,
                    LatencyTracker::summarize(&phase_latencies[p]),
                ),
            }
        })
        .collect();
    let result = EngineResult {
        scheme: plan.kind.symbol().to_string(),
        skew: plan.skew,
        processed,
        elapsed_secs,
        throughput_eps,
        latency,
        imbalance: slb_core::imbalance(&worker_counts),
        worker_counts,
        worker_state_keys,
        window_size: plan.window_size,
        aggregators: plan.aggregators,
        windows: windows.len() as u64,
        phases: phases_out,
        worker_stage: StageMetrics::new(processed, elapsed_secs, latency),
        aggregator_stage: StageMetrics::new(
            partials_merged,
            elapsed_secs,
            LatencyTracker::summarize(&aggregator_latencies),
        ),
    };
    WindowedRun { result, windows }
}

/// Executes a resolved plan over the given transport: the engine's single
/// in-process run loop, shared by the one-phase and scenario paths. Spawns
/// one thread per stage instance, each running the corresponding public
/// stage function, and assembles their reports.
fn run_plan<A, F, S, T>(
    plan: &StagePlan,
    streams: Arc<F>,
    aggregate: A,
    transport: &T,
) -> WindowedRun<A::Partial>
where
    A: WindowAggregate<KeyId>,
    F: Fn(usize, usize) -> S + Send + Sync + 'static,
    S: KeyStream + Send,
    T: Transport<A::Partial>,
{
    // The queue capacity is configured in tuples; the channels carry
    // batches, so convert through the one shared helper.
    let capacity_batches = capacity_in_batches(plan.queue_capacity, plan.batch_size);
    let (senders, receivers) = transport.tuple_channels(plan.spawned_workers, capacity_batches);
    let (partial_senders, partial_receivers) = transport.partial_channels(
        plan.aggregators,
        partial_channel_capacity(plan.spawned_workers),
    );

    let start = Instant::now();

    let mut aggregator_handles = Vec::with_capacity(plan.aggregators);
    for receiver in partial_receivers {
        let aggregate = aggregate.clone();
        let workers = plan.spawned_workers;
        aggregator_handles.push(thread::spawn(move || {
            run_aggregator_stage(workers, &aggregate, receiver)
        }));
    }

    let mut worker_handles = Vec::with_capacity(plan.spawned_workers);
    for (worker_idx, receiver) in receivers.into_iter().enumerate() {
        let plan = plan.clone();
        let aggregate = aggregate.clone();
        let partial_senders = partial_senders.clone();
        worker_handles.push(thread::spawn(move || {
            run_worker_stage(
                &plan,
                worker_idx,
                start,
                &aggregate,
                receiver,
                &partial_senders,
            )
        }));
    }
    // The workers hold their own clones of the partial senders.
    drop(partial_senders);

    let mut source_handles = Vec::with_capacity(plan.sources);
    for source_idx in 0..plan.sources {
        let plan = plan.clone();
        let senders = senders.clone();
        let streams = streams.clone();
        source_handles.push(thread::spawn(move || {
            run_source_stage(&plan, |phase| (streams)(phase, source_idx), &senders)
        }));
    }
    // Drop the topology's own copies so workers terminate when sources do.
    drop(senders);

    let mut sent_total = 0u64;
    for h in source_handles {
        sent_total += h.join().expect("source thread panicked");
    }
    let worker_reports: Vec<WorkerStageReport> = worker_handles
        .into_iter()
        .map(|h| h.join().expect("worker thread panicked"))
        .collect();
    let aggregator_reports: Vec<AggregatorStageReport<A::Partial>> = aggregator_handles
        .into_iter()
        .map(|h| h.join().expect("aggregator thread panicked"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();

    let processed: u64 = worker_reports.iter().map(|r| r.processed).sum();
    debug_assert_eq!(sent_total, processed, "every sent tuple must be processed");

    assemble_result(
        plan,
        &aggregate,
        worker_reports,
        aggregator_reports,
        elapsed,
    )
}

/// Runs one engine experiment per grouping scheme in `schemes`, all on the
/// same workload, and returns the results in the same order.
pub fn compare_schemes(base: &EngineConfig, schemes: &[PartitionerKind]) -> Vec<EngineResult> {
    schemes
        .iter()
        .map(|&kind| {
            let mut cfg = base.clone();
            cfg.kind = kind;
            Topology::new(cfg).run()
        })
        .collect()
}

/// Runs one scenario per grouping scheme in `schemes`, all on the same
/// scenario spec, and returns the results in the same order.
pub fn compare_schemes_scenario(
    base: &ScenarioConfig,
    schemes: &[PartitionerKind],
) -> Vec<EngineResult> {
    schemes
        .iter()
        .map(|&kind| base.clone().with_kind(kind).run())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_core::{SumAggregate, TopKAggregate};
    use slb_sketch::FrequencyEstimator;
    use slb_workloads::ScenarioPhase;

    #[test]
    fn smoke_run_processes_every_message() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4);
        let result = Topology::new(cfg.clone()).run();
        assert_eq!(
            result.processed,
            (cfg.messages / cfg.sources as u64) * cfg.sources as u64
        );
        assert_eq!(result.worker_counts.len(), cfg.workers);
        assert!(result.throughput_eps > 0.0);
        assert!(result.latency.samples > 0);
        assert_eq!(result.latency.samples, result.processed);
        assert_eq!(result.scheme, "PKG");
        // The aggregation stage ran: every window finalized, one partial per
        // worker per shard per window merged.
        let per_source = cfg.messages / cfg.sources as u64;
        assert_eq!(result.windows, per_source.div_ceil(cfg.window_size));
        assert_eq!(
            result.aggregator_stage.items,
            result.windows * (cfg.workers * cfg.aggregators) as u64
        );
        assert!(result.aggregator_stage.latency.samples > 0);
        assert_eq!(result.worker_stage.items, result.processed);
    }

    #[test]
    fn single_phase_run_reports_one_phase_covering_the_whole_run() {
        let cfg = EngineConfig::smoke(PartitionerKind::DChoices, 1.6).with_service_time_us(0);
        let result = Topology::new(cfg.clone()).run();
        assert_eq!(result.phases.len(), 1);
        let phase = &result.phases[0];
        assert_eq!(phase.phase, 0);
        assert_eq!(phase.workers, cfg.workers);
        assert_eq!(phase.start_window, 0);
        assert_eq!(phase.stage.items, result.processed);
        assert_eq!(phase.worker_counts, result.worker_counts);
        assert!((phase.imbalance - result.imbalance).abs() < 1e-12);
        assert_eq!(phase.stage.latency.samples, result.latency.samples);
    }

    #[test]
    fn key_grouping_keeps_state_compact_but_unbalanced() {
        // Under heavy skew, KG holds each key on exactly one worker (minimal
        // state) but its processed-count imbalance is large compared to SG.
        let kg = Topology::new(EngineConfig::smoke(PartitionerKind::KeyGrouping, 2.0)).run();
        let sg = Topology::new(EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 2.0)).run();
        assert!(kg.imbalance > sg.imbalance);
        assert!(kg.total_state_replicas() <= sg.total_state_replicas());
    }

    #[test]
    fn w_choices_balances_better_than_pkg_under_extreme_skew() {
        let pkg = Topology::new(EngineConfig::smoke(PartitionerKind::Pkg, 2.0)).run();
        let wc = Topology::new(EngineConfig::smoke(PartitionerKind::WChoices, 2.0)).run();
        assert!(
            wc.imbalance <= pkg.imbalance + 1e-9,
            "W-C imbalance {} vs PKG {}",
            wc.imbalance,
            pkg.imbalance
        );
    }

    #[test]
    fn compare_schemes_returns_one_result_per_scheme() {
        let base = EngineConfig::smoke(PartitionerKind::Pkg, 1.4).with_messages(4_000);
        let results = compare_schemes(
            &base,
            &[
                PartitionerKind::KeyGrouping,
                PartitionerKind::ShuffleGrouping,
            ],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scheme, "KG");
        assert_eq!(results[1].scheme, "SG");
    }

    #[test]
    fn zero_service_time_is_supported() {
        let cfg = EngineConfig::smoke(PartitionerKind::ShuffleGrouping, 1.0)
            .with_messages(8_000)
            .with_service_time_us(0);
        let r = Topology::new(cfg).run();
        assert_eq!(r.processed, 8_000);
    }

    #[test]
    fn partial_final_batches_are_flushed() {
        // A message count that is not a multiple of the batch size (and a
        // batch size larger than some workers' share) must still deliver
        // every tuple, with samples matching processed.
        for batch in [1usize, 3, 7, 256, 100_000] {
            let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
                .with_messages(10_001)
                .with_service_time_us(0)
                .with_batch_size(batch);
            let sources = cfg.sources as u64;
            let r = Topology::new(cfg).run();
            assert_eq!(r.processed, (10_001 / sources) * sources, "batch={batch}");
            assert_eq!(r.latency.samples, r.processed, "batch={batch}");
        }
    }

    #[test]
    fn batch_size_does_not_change_routing_decisions() {
        // The transport batch size is invisible to the grouping scheme: the
        // per-worker tuple counts and per-worker state footprints must be
        // identical whether tuples travel one at a time or 256 at a time.
        for kind in [
            PartitionerKind::Pkg,
            PartitionerKind::DChoices,
            PartitionerKind::ShuffleGrouping,
        ] {
            let base = EngineConfig::smoke(kind, 1.8)
                .with_messages(12_000)
                .with_service_time_us(0);
            let scalar = Topology::new(base.clone().with_batch_size(1)).run();
            let batched = Topology::new(base.with_batch_size(256)).run();
            assert_eq!(
                scalar.worker_counts, batched.worker_counts,
                "{kind:?} per-worker counts changed with batch size"
            );
            assert_eq!(
                scalar.worker_state_keys, batched.worker_state_keys,
                "{kind:?} per-worker state changed with batch size"
            );
        }
    }

    #[test]
    fn windowed_count_run_covers_every_tuple_once() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4)
            .with_service_time_us(0)
            .with_window_size(512);
        let per_source = cfg.messages / cfg.sources as u64;
        let sources = cfg.sources as u64;
        let run = Topology::new(cfg).run_windowed(CountAggregate);
        assert_eq!(run.windows.len() as u64, per_source.div_ceil(512));
        let total: u64 = run.windows.values().flat_map(|w| w.values()).sum();
        assert_eq!(total, run.result.processed);
        // Every full window carries sources × window_size tuples exactly.
        for (window, counts) in &run.windows {
            let tuples: u64 = counts.values().sum();
            if (window + 1) * 512 <= per_source {
                assert_eq!(tuples, 512 * sources, "window {window}");
            }
        }
    }

    #[test]
    fn windowed_sum_and_top_k_aggregates_run_end_to_end() {
        let cfg = EngineConfig::smoke(PartitionerKind::WChoices, 2.0)
            .with_messages(6_000)
            .with_service_time_us(0)
            .with_window_size(1_000);
        let sum = Topology::new(cfg.clone()).run_windowed(SumAggregate);
        let per_window: u64 = cfg.window_size * cfg.sources as u64;
        for (&window, &tuples) in &sum.windows {
            assert_eq!(tuples, per_window, "window {window}");
        }
        let topk = Topology::new(cfg.clone()).run_windowed(TopKAggregate::new(64));
        for summary in topk.windows.values() {
            assert_eq!(summary.total(), per_window);
            // Under z=2.0 the hottest key dominates; it must be monitored.
            assert!(summary.sorted_counters()[0].count > per_window / 10);
        }
    }

    #[test]
    fn aggregator_shard_count_does_not_change_merged_windows() {
        let base = EngineConfig::smoke(PartitionerKind::DChoices, 1.8)
            .with_messages(8_000)
            .with_service_time_us(0)
            .with_window_size(750);
        let one = Topology::new(base.clone().with_aggregators(1)).run_windowed(CountAggregate);
        let three = Topology::new(base.with_aggregators(3)).run_windowed(CountAggregate);
        assert_eq!(one.windows, three.windows);
    }

    /// A small scenario exercising scale-out, drift, heterogeneity, and a
    /// burst phase at test speed.
    fn small_scenario(seed: u64) -> Scenario {
        Scenario::new("unit", 2, 256, seed)
            .phase(ScenarioPhase::new(2, 400, 1.8, 3))
            .phase(
                ScenarioPhase::new(2, 400, 1.2, 5)
                    .with_drift_epochs(2)
                    .with_worker_speed(vec![2.0, 1.0, 1.0, 1.0, 1.0]),
            )
            .phase(
                ScenarioPhase::new(1, 200, 0.0, 2).with_arrival(Arrival::Bursty {
                    burst_tuples: 128,
                    pause_us: 10,
                }),
            )
    }

    #[test]
    fn scenario_run_processes_every_tuple_and_reports_phases() {
        let scenario = small_scenario(7);
        let expected = scenario.total_tuples();
        let result = ScenarioConfig::new(PartitionerKind::Pkg, scenario.clone()).run();
        assert_eq!(result.processed, expected);
        assert_eq!(result.phases.len(), 3);
        assert_eq!(result.worker_counts.len(), scenario.max_workers());
        assert_eq!(result.windows, scenario.total_windows());
        for (p, phase) in result.phases.iter().enumerate() {
            assert_eq!(phase.phase, p);
            assert_eq!(phase.workers, scenario.phases[p].workers);
            assert_eq!(phase.start_window, scenario.phase_start_window(p));
            assert_eq!(
                phase.stage.items,
                scenario.phase_tuples_per_source(p) * scenario.sources as u64
            );
            assert_eq!(phase.worker_counts.len(), phase.workers);
            assert_eq!(phase.stage.items, phase.worker_counts.iter().sum::<u64>());
            assert!(phase.imbalance >= 0.0);
        }
        let phase_total: u64 = result.phases.iter().map(|p| p.stage.items).sum();
        assert_eq!(phase_total, result.processed);
        assert_eq!(result.latency.samples, result.processed);
    }

    #[test]
    fn scenario_tuples_never_route_outside_the_active_set() {
        // Phase 2 scales in to 2 workers: the scale-in phase must route
        // nothing to workers 2..5 even though they were active in phase 1.
        let result = ScenarioConfig::new(PartitionerKind::WChoices, small_scenario(11)).run();
        let scale_in = &result.phases[2];
        assert_eq!(scale_in.workers, 2);
        assert_eq!(
            scale_in.worker_counts.iter().sum::<u64>(),
            scale_in.stage.items
        );
    }

    #[test]
    fn sub_batch_bursts_preserve_counts_and_windows() {
        // Bursts smaller than the transport batch cap the key-buffer chunks,
        // so every burst boundary is observed; routing, counts, and windows
        // must be identical to the steady run of the same spec.
        let steady =
            Scenario::single_phase("steady", 2, 256, 13, ScenarioPhase::new(3, 300, 1.6, 4));
        let mut bursty = steady.clone();
        bursty.phases[0].arrival = Arrival::Bursty {
            burst_tuples: 64, // default batch_size is 256
            pause_us: 1,
        };
        let a = ScenarioConfig::new(PartitionerKind::Pkg, steady).run_windowed(CountAggregate);
        let b = ScenarioConfig::new(PartitionerKind::Pkg, bursty).run_windowed(CountAggregate);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.result.worker_counts, b.result.worker_counts);
        assert_eq!(b.result.processed, 2 * 3 * 256);
    }

    #[test]
    fn scenario_reruns_are_deterministic() {
        let cfg = ScenarioConfig::new(PartitionerKind::DChoices, small_scenario(3));
        let a = cfg.run_windowed(CountAggregate);
        let b = cfg.run_windowed(CountAggregate);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.result.worker_counts, b.result.worker_counts);
        for (x, y) in a.result.phases.iter().zip(&b.result.phases) {
            assert_eq!(x.worker_counts, y.worker_counts);
            assert_eq!(x.imbalance.to_bits(), y.imbalance.to_bits());
        }
    }

    #[test]
    fn compare_schemes_scenario_labels_results() {
        let base = ScenarioConfig::new(PartitionerKind::Pkg, small_scenario(5));
        let results = compare_schemes_scenario(
            &base,
            &[PartitionerKind::KeyGrouping, PartitionerKind::WChoices],
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scheme, "KG");
        assert_eq!(results[1].scheme, "W-C");
    }

    #[test]
    fn explicit_inproc_transport_matches_default_run() {
        // run_windowed_on(&InProc) is the same loop as run_windowed; counts
        // and windows must match exactly.
        let cfg = EngineConfig::smoke(PartitionerKind::DChoices, 1.8)
            .with_messages(8_000)
            .with_service_time_us(0);
        let implicit = Topology::new(cfg.clone()).run_windowed(CountAggregate);
        let explicit = Topology::new(cfg).run_windowed_on(CountAggregate, &InProc);
        assert_eq!(implicit.windows, explicit.windows);
        assert_eq!(implicit.result.worker_counts, explicit.result.worker_counts);
    }

    #[test]
    fn stage_plan_is_a_pure_function_of_the_config() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4);
        let a = cfg.stage_plan();
        let b = cfg.stage_plan();
        assert_eq!(a.phases.len(), 1);
        assert_eq!(a.phases[0].tuples_per_source, b.phases[0].tuples_per_source);
        assert_eq!(a.phases[0].windows, b.phases[0].windows);
        assert_eq!(a.spawned_workers, cfg.workers);
        let scenario_cfg = ScenarioConfig::new(PartitionerKind::WChoices, small_scenario(9));
        let plan = scenario_cfg.stage_plan();
        assert_eq!(plan.phases.len(), 3);
        assert_eq!(plan.spawned_workers, 5);
        assert_eq!(*plan.phase_starts, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "invalid scenario")]
    fn invalid_scenario_panics() {
        let scenario = Scenario::new("empty", 2, 64, 1); // no phases
        let _ = ScenarioConfig::new(PartitionerKind::Pkg, scenario).run();
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_panics() {
        let mut cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0);
        cfg.workers = 0;
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn zero_batch_size_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_batch_size(0);
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "windows need at least one tuple")]
    fn zero_window_size_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_window_size(0);
        let _ = Topology::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one aggregator")]
    fn zero_aggregators_panics() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.0).with_aggregators(0);
        let _ = Topology::new(cfg);
    }
}
