//! Deterministic fault injection and the worker checkpoint store.
//!
//! A [`FaultPlan`] is a declarative list of faults pinned to deterministic
//! offsets — "kill worker 2 after it has processed 5 000 tuples", "drop 3
//! consecutive batches from source 0 to worker 1 starting at its 40th
//! message". Both the in-process and TCP backends execute the same plan at
//! the same logical points, because the triggers count *logical* progress
//! (tuples processed, messages sent on one connection), never wall-clock
//! time. That is what lets the fault-injection differential suite demand
//! bit-identical merged windowed counts against the single-threaded exact
//! reference: the faults themselves are reproducible.
//!
//! Two fault shapes cover the failure modes the recovery protocol handles:
//!
//! * [`FaultEvent::KillWorker`] simulates a worker crash. The worker stage
//!   discards all volatile state (open partials, counters, sequence
//!   cursors) at the trigger point, restores its last checkpoint from the
//!   [`CheckpointStore`], and asks every source to replay from the
//!   checkpoint's sequence cursors.
//! * [`FaultEvent::DropConnection`] simulates message loss on one
//!   source → worker connection. The source silently discards `lose`
//!   consecutive *batch* messages (sequence numbers still advance, so the
//!   worker observes a gap and requests replay). Close markers are never
//!   dropped: a window's close always survives, which guarantees the gap is
//!   detected before the worker could finalize the window short.
//!
//! Faults fire **once**: a restored worker whose counters rewound below a
//! kill threshold does not re-trip it.

use std::sync::Mutex;

/// One injected fault, pinned to a deterministic logical offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Crash worker `worker` immediately after it has processed
    /// `after_tuples` tuples, discarding all volatile state. The worker
    /// recovers from its last checkpoint and bounded replay.
    KillWorker {
        /// Index of the worker to crash.
        worker: usize,
        /// Lifetime processed-tuple count that trips the crash.
        after_tuples: u64,
    },
    /// Silently lose `lose` consecutive batch messages on the
    /// `source` → `worker` connection, starting after that connection has
    /// carried `after_messages` messages. Sequence numbers advance across
    /// the loss, so the receiver detects the gap exactly.
    DropConnection {
        /// Index of the sending source.
        source: usize,
        /// Index of the receiving worker.
        worker: usize,
        /// Messages sent on the connection before the loss begins.
        after_messages: u64,
        /// Number of consecutive batch messages to lose.
        lose: u64,
    },
}

/// A deterministic fault schedule for one run. Empty by default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

/// A source-side view of one [`FaultEvent::DropConnection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionDrop {
    /// The receiving worker whose connection loses messages.
    pub worker: usize,
    /// Messages sent on the connection before the loss begins.
    pub after_messages: u64,
    /// Number of consecutive batch messages to lose.
    pub lose: u64,
}

impl FaultPlan {
    /// A plan with no faults: runs behave exactly like the plain engine.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Schedules a worker crash after `after_tuples` processed tuples.
    pub fn kill_worker(mut self, worker: usize, after_tuples: u64) -> Self {
        self.events.push(FaultEvent::KillWorker {
            worker,
            after_tuples,
        });
        self
    }

    /// Schedules the loss of `lose` consecutive batch messages on the
    /// `source` → `worker` connection after `after_messages` messages.
    pub fn drop_connection(
        mut self,
        source: usize,
        worker: usize,
        after_messages: u64,
        lose: u64,
    ) -> Self {
        self.events.push(FaultEvent::DropConnection {
            source,
            worker,
            after_messages,
            lose,
        });
        self
    }

    /// The processed-tuple thresholds at which `worker` must crash, sorted
    /// ascending.
    pub fn kill_points(&self, worker: usize) -> Vec<u64> {
        let mut points: Vec<u64> = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::KillWorker {
                    worker: w,
                    after_tuples,
                } if *w == worker => Some(*after_tuples),
                _ => None,
            })
            .collect();
        points.sort_unstable();
        points
    }

    /// The connection drops `source` must inject, in insertion order.
    pub fn drops_from(&self, source: usize) -> Vec<ConnectionDrop> {
        self.events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::DropConnection {
                    source: s,
                    worker,
                    after_messages,
                    lose,
                } if *s == source => Some(ConnectionDrop {
                    worker: *worker,
                    after_messages: *after_messages,
                    lose: *lose,
                }),
                _ => None,
            })
            .collect()
    }

    /// Checks every event's indices against the topology size.
    pub fn validate(&self, sources: usize, workers: usize) -> Result<(), String> {
        for event in &self.events {
            match *event {
                FaultEvent::KillWorker { worker, .. } => {
                    if worker >= workers {
                        return Err(format!(
                            "kill-worker fault names worker {worker} of {workers}"
                        ));
                    }
                }
                FaultEvent::DropConnection {
                    source,
                    worker,
                    lose,
                    ..
                } => {
                    if source >= sources {
                        return Err(format!(
                            "drop-connection fault names source {source} of {sources}"
                        ));
                    }
                    if worker >= workers {
                        return Err(format!(
                            "drop-connection fault names worker {worker} of {workers}"
                        ));
                    }
                    if lose == 0 {
                        return Err("drop-connection fault loses zero messages".to_string());
                    }
                }
            }
        }
        Ok(())
    }
}

/// The in-memory durable store workers checkpoint into: one slot per worker
/// holding the latest encoded [`slb_core::WorkerCheckpoint`].
///
/// A simulated crash discards everything the worker holds on its stack and
/// restores *only* from these bytes, so the store stands in for the durable
/// medium (local disk, replicated log) a production deployment would use —
/// the recovery path decodes exactly what a real restart would read.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    slots: Mutex<Vec<Option<Vec<u8>>>>,
    saves: Mutex<u64>,
}

impl CheckpointStore {
    /// Creates a store with one empty slot per worker.
    pub fn new(workers: usize) -> Self {
        Self {
            slots: Mutex::new(vec![None; workers]),
            saves: Mutex::new(0),
        }
    }

    /// Replaces `worker`'s checkpoint with `bytes`. Takes a slice rather
    /// than an owned vector so the slot's allocation is reused save after
    /// save — workers checkpoint at every window close, and the store
    /// sits on that path.
    pub fn save(&self, worker: usize, bytes: &[u8]) {
        let mut slots = self.slots.lock().unwrap();
        if worker >= slots.len() {
            slots.resize(worker + 1, None);
        }
        match &mut slots[worker] {
            Some(slot) => {
                slot.clear();
                slot.extend_from_slice(bytes);
            }
            empty => *empty = Some(bytes.to_vec()),
        }
        *self.saves.lock().unwrap() += 1;
    }

    /// Returns a copy of `worker`'s latest checkpoint, if it has taken one.
    pub fn load(&self, worker: usize) -> Option<Vec<u8>> {
        self.slots.lock().unwrap().get(worker).cloned().flatten()
    }

    /// Total checkpoints saved across all workers (for tests and metrics).
    pub fn saves(&self) -> u64 {
        *self.saves.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(FaultPlan::none().kill_points(0).is_empty());
        assert!(FaultPlan::none().drops_from(0).is_empty());
        assert_eq!(FaultPlan::none().validate(2, 4), Ok(()));
    }

    #[test]
    fn kill_points_filter_and_sort_per_worker() {
        let plan = FaultPlan::none()
            .kill_worker(1, 900)
            .kill_worker(0, 50)
            .kill_worker(1, 100);
        assert_eq!(plan.kill_points(1), vec![100, 900]);
        assert_eq!(plan.kill_points(0), vec![50]);
        assert!(plan.kill_points(2).is_empty());
    }

    #[test]
    fn drops_filter_per_source() {
        let plan = FaultPlan::none()
            .drop_connection(0, 2, 10, 3)
            .drop_connection(1, 0, 5, 1);
        let drops = plan.drops_from(0);
        assert_eq!(drops.len(), 1);
        assert_eq!(
            drops[0],
            ConnectionDrop {
                worker: 2,
                after_messages: 10,
                lose: 3
            }
        );
        assert!(plan.drops_from(2).is_empty());
    }

    #[test]
    fn validate_rejects_out_of_range_and_zero_loss() {
        assert!(FaultPlan::none().kill_worker(4, 1).validate(2, 4).is_err());
        assert!(FaultPlan::none()
            .drop_connection(2, 0, 0, 1)
            .validate(2, 4)
            .is_err());
        assert!(FaultPlan::none()
            .drop_connection(0, 4, 0, 1)
            .validate(2, 4)
            .is_err());
        assert!(FaultPlan::none()
            .drop_connection(0, 0, 0, 0)
            .validate(2, 4)
            .is_err());
        assert!(FaultPlan::none()
            .kill_worker(3, 1)
            .drop_connection(1, 3, 7, 2)
            .validate(2, 4)
            .is_ok());
    }

    #[test]
    fn checkpoint_store_keeps_the_latest_per_worker() {
        let store = CheckpointStore::new(2);
        assert_eq!(store.load(0), None);
        store.save(0, &[1, 2]);
        store.save(1, &[3]);
        store.save(0, &[9, 9, 9]);
        assert_eq!(store.load(0), Some(vec![9, 9, 9]));
        assert_eq!(store.load(1), Some(vec![3]));
        assert_eq!(store.load(7), None, "unknown worker loads nothing");
        assert_eq!(store.saves(), 3);
    }
}
