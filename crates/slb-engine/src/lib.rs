//! A threaded in-process mini-DSPE used for the throughput/latency study.
//!
//! The paper's Figures 13 and 14 come from a deployment on an Apache Storm
//! cluster: 48 sources generate a Zipf stream, 80 workers aggregate it with
//! a fixed 1 ms of CPU work per tuple, and a downstream aggregation stage
//! merges the workers' partial per-key state — the stage that makes key
//! splitting (PKG, D-Choices, W-Choices) *sound*, because splitting is only
//! admissible if something re-unifies the state it scatters. We reproduce
//! the same three-operator topology in process: source threads generate and
//! route tuples through the grouping scheme under study, bounded channels
//! model the workers' input queues, worker threads perform a configurable
//! amount of busy work per tuple while accumulating per-window partial
//! aggregates, and key-hash-sharded aggregator threads merge the partials
//! into the final per-window result.
//!
//! The absolute numbers differ from the paper's cluster, but the comparison
//! between grouping schemes — who saturates first, whose queues grow — is
//! governed by the same mechanism: the most loaded worker is the bottleneck,
//! so a scheme with higher imbalance delivers lower throughput and higher
//! tail latency. The merged windowed output, by contrast, must not depend on
//! the scheme at all: for every scheme, batch size, and aggregator shard
//! count it is bit-identical to a single-threaded exact count (the
//! `differential` test suite pins this invariant).
//!
//! The run loop is *phased* (see `docs/SCENARIOS.md`): every run executes a
//! sequence of phases, each fixing the key distribution, arrival pattern,
//! active worker count, and per-worker speed multipliers. A plain
//! [`EngineConfig`] run is the one-phase special case; a [`ScenarioConfig`]
//! executes a multi-phase [`slb_workloads::Scenario`] — drifting skew,
//! heterogeneous workers, bursts, and mid-run scale-out — and reports
//! per-phase [`PhaseMetrics`] alongside the run totals. The exactness
//! invariant extends unchanged: scenario runs are pinned against
//! [`exact_scenario_windowed_counts`] by the `scenario_differential` suite.
//!
//! The transport the tuples and partials travel through is *pluggable*
//! (see [`transport`]): the run loop and each of its stages are generic over
//! a [`Transport`] that supplies the channel endpoints for the topology's
//! three hops. [`InProc`] — bounded crossbeam channels — is the default and
//! the reference backend; the `slb-net` crate implements the same contract
//! over TCP sockets, in process and across process boundaries, and proves
//! equivalence with a cross-backend differential suite.
//!
//! * [`topology`] — configuration, the phased three-stage runner, and the
//!   per-stage entry points a distributed deployment composes.
//! * [`transport`] — the transport abstraction and the in-process backend.
//! * [`spsc`] — the thread-per-core backend: lock-free SPSC rings per stage
//!   pair, batch-buffer recycling, and best-effort core pinning.
//! * [`windows`] — deterministic tuple-count windows and the exact
//!   single-threaded reference aggregations (config and scenario).
//! * [`latency`] — latency recording, percentile summaries, per-stage and
//!   per-phase metrics.

pub mod fault;
pub mod latency;
pub mod spsc;
pub mod topology;
pub mod transport;
pub mod windows;

pub use fault::{CheckpointStore, ConnectionDrop, FaultEvent, FaultPlan};
pub use latency::{LatencySummary, LatencyTracker, PhaseMetrics, RecoveryMetrics, StageMetrics};
pub use spsc::{Spsc, SpscReceiver, SpscSender};
pub use topology::{
    assemble_result, compare_schemes, compare_schemes_scenario, run_aggregator_stage,
    run_aggregator_stage_supervised, run_source_stage, run_source_stage_recoverable,
    run_source_stage_supervised, run_worker_stage, run_worker_stage_durable,
    run_worker_stage_recoverable, AggregatorStageReport, EngineConfig, EngineResult, PhasePlan,
    ScenarioConfig, SourceControlEvent, SourceStageReport, StagePlan, Topology, TransportStats,
    WorkerStageReport, DEFAULT_AGGREGATORS, DEFAULT_BATCH_SIZE, DEFAULT_QUEUE_CAPACITY,
    DEFAULT_WINDOW_SIZE,
};
pub use transport::{
    capacity_in_batches, feedback_channel_capacity, partial_channel_capacity, ChannelClosed,
    CorePinning, FeedbackReceiver, FeedbackSender, InProc, PartialReceiver, PartialSender,
    PartialWindow, RecvError, ReplayRequest, SourceMessage, StageRole, Transport, TransportError,
    TupleBatch, TupleReceiver, TupleSender,
};
pub use windows::{
    diff_windows, exact_scenario_windowed_counts, exact_windowed_counts, window_of, WindowId,
    WindowedRun,
};
