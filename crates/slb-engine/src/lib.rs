//! A threaded in-process mini-DSPE used for the throughput/latency study.
//!
//! The paper's Figures 13 and 14 come from a deployment on an Apache Storm
//! cluster: 48 sources generate a Zipf stream and 80 workers aggregate it,
//! with a fixed 1 ms of CPU work per tuple, so that the cluster operates at
//! its saturation point and the end-to-end latency is dominated by queueing
//! at the most loaded worker. We reproduce the same topology shape in
//! process: source threads generate and route tuples through the grouping
//! scheme under study, bounded channels model the workers' input queues, and
//! worker threads perform a configurable amount of busy work per tuple while
//! recording their own throughput and per-tuple latency.
//!
//! The absolute numbers differ from the paper's cluster, but the comparison
//! between grouping schemes — who saturates first, whose queues grow — is
//! governed by the same mechanism: the most loaded worker is the bottleneck,
//! so a scheme with higher imbalance delivers lower throughput and higher
//! tail latency.
//!
//! * [`topology`] — configuration and the runner.
//! * [`latency`] — latency recording and percentile summaries.

pub mod latency;
pub mod topology;

pub use latency::{LatencySummary, LatencyTracker};
pub use topology::{EngineConfig, EngineResult, Topology, DEFAULT_BATCH_SIZE};
