//! Deterministic tuple-count windows and the exact reference aggregation.
//!
//! ## Window model
//!
//! Every source emits a deterministic, seeded sub-stream of
//! `messages / sources` tuples. The tuple with 0-based position `i` in its
//! source's sub-stream belongs to window `i / window_size`, regardless of
//! which worker the grouping scheme routes it to. Window membership is
//! therefore a pure function of the configuration — it does not depend on
//! thread interleaving, transport batch size, queue capacities, or the
//! grouping scheme — and all sources produce exactly the same set of window
//! identifiers (their sub-streams have equal length).
//!
//! A window closes at the workers via punctuation: when a source crosses a
//! window boundary it flushes its in-flight batches and sends a close marker
//! for the finished window to *every* worker. Channels are FIFO per
//! source→worker pair, so once a worker has seen the close marker from all
//! sources it provably holds every tuple of that window that was routed to
//! it, and can emit its partial aggregate downstream. This is how the
//! paper's Storm topology finalizes windowed counts behind PKG's key
//! splitting, and it is what makes the merged result *exactly* — not just
//! statistically — comparable to a single-threaded count.
//!
//! ## The reference
//!
//! [`exact_windowed_counts`] replays the same seeded sub-streams on one
//! thread and counts keys per window into plain hash maps. The differential
//! suite asserts the engine's merged output is bit-identical to it for every
//! grouping scheme, skew, seed, batch size, and aggregator shard count.

use std::collections::{BTreeMap, HashMap};

use slb_workloads::zipf::ZipfGenerator;
use slb_workloads::{KeyId, KeyStream, Scenario};

use crate::topology::{EngineConfig, EngineResult};

/// Window identifier: index of a tuple-count window in a source sub-stream.
pub type WindowId = u64;

/// The window that the tuple at 0-based source position `local_idx` belongs
/// to, for `window_size`-tuple windows.
///
/// # Panics
/// Panics (in debug builds) if `window_size == 0`.
#[inline]
pub fn window_of(local_idx: u64, window_size: u64) -> WindowId {
    debug_assert!(window_size > 0, "windows need at least one tuple");
    local_idx / window_size
}

/// Outcome of a windowed engine run: the usual measurements plus the final
/// merged per-window aggregates (shards already merged back together).
#[derive(Debug, Clone)]
pub struct WindowedRun<P> {
    /// Throughput/latency/imbalance measurements, as for [`crate::Topology::run`].
    pub result: EngineResult,
    /// Final merged aggregate per window, keyed by window id.
    pub windows: BTreeMap<WindowId, P>,
}

/// The seeded sub-stream of one source: an independent sampler per source,
/// but a *shared* key-identity scramble derived from the topology seed, so
/// that all sources draw from the same key space (the hot key is the same
/// `KeyId` everywhere, and per-key counts from different sources collide on
/// the same identifier downstream). Both the engine's source threads and the
/// exact reference construct their streams through this one function —
/// divergence between them is structurally impossible.
pub fn source_stream(cfg: &EngineConfig, source_idx: usize) -> ZipfGenerator {
    let per_source = cfg.messages / cfg.sources as u64;
    let stream_seed = cfg.seed.wrapping_add(1 + source_idx as u64);
    ZipfGenerator::with_limit(cfg.keys, cfg.skew, stream_seed, per_source).scrambled_like(cfg.seed)
}

/// Single-threaded exact reference for the windowed count aggregation: the
/// per-window per-key counts obtained by replaying every source's seeded
/// sub-stream in order on one thread.
///
/// For any `EngineConfig` with the same `sources`, `keys`, `skew`,
/// `messages`, `seed`, and `window_size`, the engine's merged
/// [`crate::topology::Topology::run_windowed`] output under
/// [`slb_core::CountAggregate`] must equal this map bit for bit — the
/// key-splitting soundness invariant.
pub fn exact_windowed_counts(cfg: &EngineConfig) -> BTreeMap<WindowId, HashMap<KeyId, u64>> {
    let mut windows: BTreeMap<WindowId, HashMap<KeyId, u64>> = BTreeMap::new();
    for source_idx in 0..cfg.sources {
        let mut stream = source_stream(cfg, source_idx);
        let mut local_idx = 0u64;
        while let Some(key) = KeyStream::next_key(&mut stream) {
            let window = window_of(local_idx, cfg.window_size);
            *windows.entry(window).or_default().entry(key).or_insert(0) += 1;
            local_idx += 1;
        }
    }
    windows
}

/// Single-threaded exact reference for a *scenario* run: the per-window
/// per-key counts obtained by replaying every source's per-phase streams in
/// order on one thread, with the global window index continuing across
/// phases. The engine's merged scenario output under
/// [`slb_core::CountAggregate`] must equal this map bit for bit, for every
/// grouping scheme, worker-count change, drift epoch, burst pattern, batch
/// size, and aggregator shard count.
///
/// # Panics
/// Panics if the scenario is invalid.
pub fn exact_scenario_windowed_counts(
    scenario: &Scenario,
) -> BTreeMap<WindowId, HashMap<KeyId, u64>> {
    if let Err(message) = scenario.validate() {
        panic!("invalid scenario: {message}");
    }
    let mut windows: BTreeMap<WindowId, HashMap<KeyId, u64>> = BTreeMap::new();
    for source_idx in 0..scenario.sources {
        let mut local_idx = 0u64;
        for phase_idx in 0..scenario.phases.len() {
            let mut stream = scenario.phase_stream(phase_idx, source_idx);
            while let Some(key) = KeyStream::next_key(&mut stream) {
                let window = window_of(local_idx, scenario.window_size);
                *windows.entry(window).or_default().entry(key).or_insert(0) += 1;
                local_idx += 1;
            }
        }
    }
    windows
}

/// Explains the first divergence between two windowed count maps, or `None`
/// when they are identical. Differential suites use this to turn a failed
/// map equality into a message naming the first divergent window and key —
/// "window 3, key 17: got 4, expected 5" — instead of dumping two maps with
/// thousands of entries.
pub fn diff_windows(
    got: &BTreeMap<WindowId, HashMap<KeyId, u64>>,
    expected: &BTreeMap<WindowId, HashMap<KeyId, u64>>,
) -> Option<String> {
    // Walk windows in ascending order across both maps.
    let windows: std::collections::BTreeSet<WindowId> =
        got.keys().chain(expected.keys()).copied().collect();
    for window in windows {
        let (g, e) = match (got.get(&window), expected.get(&window)) {
            (Some(g), Some(e)) => (g, e),
            (Some(g), None) => {
                let tuples: u64 = g.values().sum();
                return Some(format!(
                    "window {window}: unexpected ({} keys, {tuples} tuples); expected side has no such window",
                    g.len()
                ));
            }
            (None, Some(e)) => {
                let tuples: u64 = e.values().sum();
                return Some(format!(
                    "window {window}: missing; expected {} keys, {tuples} tuples",
                    e.len()
                ));
            }
            (None, None) => unreachable!("window drawn from one of the maps"),
        };
        if g == e {
            continue;
        }
        // Report the smallest divergent key for a stable message.
        let keys: std::collections::BTreeSet<KeyId> = g.keys().chain(e.keys()).copied().collect();
        for key in keys {
            let got_count = g.get(&key).copied().unwrap_or(0);
            let expected_count = e.get(&key).copied().unwrap_or(0);
            if got_count != expected_count {
                let got_tuples: u64 = g.values().sum();
                let expected_tuples: u64 = e.values().sum();
                return Some(format!(
                    "window {window}, key {key}: got {got_count}, expected {expected_count} \
                     (window totals: got {got_tuples}, expected {expected_tuples})"
                ));
            }
        }
        unreachable!("maps differ but every key matches");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_core::PartitionerKind;

    #[test]
    fn window_of_basic_arithmetic() {
        assert_eq!(window_of(0, 4), 0);
        assert_eq!(window_of(3, 4), 0);
        assert_eq!(window_of(4, 4), 1);
        assert_eq!(window_of(11, 4), 2);
    }

    #[test]
    fn reference_covers_every_message_and_window() {
        let cfg = EngineConfig::smoke(PartitionerKind::Pkg, 1.4);
        let reference = exact_windowed_counts(&cfg);
        let per_source = cfg.messages / cfg.sources as u64;
        let expected_windows = per_source.div_ceil(cfg.window_size);
        assert_eq!(reference.len() as u64, expected_windows);
        let total: u64 = reference.values().flat_map(|w| w.values()).copied().sum();
        assert_eq!(total, per_source * cfg.sources as u64);
        // Every full window holds exactly sources × window_size tuples.
        for (window, counts) in &reference {
            let tuples: u64 = counts.values().sum();
            if (window + 1) * cfg.window_size <= per_source {
                assert_eq!(tuples, cfg.window_size * cfg.sources as u64);
            }
        }
    }

    #[test]
    fn reference_is_deterministic_across_calls() {
        let cfg = EngineConfig::smoke(PartitionerKind::DChoices, 2.0).with_seed(99);
        assert_eq!(exact_windowed_counts(&cfg), exact_windowed_counts(&cfg));
    }

    #[test]
    fn diff_windows_names_the_first_divergence() {
        let mut a: BTreeMap<WindowId, HashMap<KeyId, u64>> = BTreeMap::new();
        a.insert(0, [(1u64, 2u64), (5, 1)].into_iter().collect());
        a.insert(1, [(7u64, 3u64)].into_iter().collect());
        assert_eq!(diff_windows(&a, &a), None, "identical maps diff to None");
        // A count divergence names window, key, and both counts.
        let mut b = a.clone();
        b.get_mut(&1).unwrap().insert(7, 4);
        let message = diff_windows(&b, &a).expect("divergence found");
        assert!(message.contains("window 1, key 7"), "{message}");
        assert!(message.contains("got 4, expected 3"), "{message}");
        // A key present on one side only reports count zero on the other.
        let mut c = a.clone();
        c.get_mut(&0).unwrap().remove(&5);
        let message = diff_windows(&c, &a).expect("missing key found");
        assert!(message.contains("window 0, key 5"), "{message}");
        assert!(message.contains("got 0, expected 1"), "{message}");
        // A whole missing window is reported as such.
        let mut d = a.clone();
        d.remove(&1);
        let message = diff_windows(&d, &a).expect("missing window found");
        assert!(message.contains("window 1: missing"), "{message}");
    }
}
