//! The thread-per-core in-process transport: lock-free SPSC rings with
//! batch recycling and best-effort core pinning.
//!
//! [`InProc`](crate::InProc) multiplexes every stage pair over one
//! Mutex+Condvar MPMC queue per worker, and `docs/PERF.md` shows that queue
//! — not routing — is now the engine's bottleneck: `route_batch` sustains
//! hundreds of Melem/s while the full zero-service engine tops out around
//! 31. [`Spsc`] removes the locks from the steady state:
//!
//! * **One single-producer/single-consumer ring per (sender clone, receiver)
//!   pair.** Every cloned sender handle lazily claims a private *lane* — a
//!   bounded Lamport ring — on its first send, so the hot path is a plain
//!   array write plus one release store, with no CAS, no lock, and no wakeup
//!   syscall. The run loop clones one sender per stage thread (that is the
//!   [`Transport`] contract), so each lane really is single-producer.
//! * **Batch recycling.** Tuple lanes carry a reverse ring of spent
//!   `Vec<KeyId>` buffers from the worker back to the source
//!   ([`TupleReceiver::recycle`] / [`TupleSender::take_recycled`]), so the
//!   steady state allocates zero batch buffers: the same handful of vectors
//!   shuttles back and forth for the whole run.
//! * **Core pinning.** [`Spsc`] is the one backend that overrides
//!   [`Transport::core_pinning`]: stage threads pin themselves to a core
//!   (workers first — they are the bottleneck stage — then sources, then
//!   aggregators, round-robin over the machine) via a best-effort
//!   `sched_setaffinity`, which keeps a producer/consumer pair's ring lines
//!   in two fixed L1/L2 caches instead of migrating with the scheduler.
//!
//! Punctuation ([`SourceMessage::CloseWindow`]), sharded partials, and the
//! worker→source replay feedback all ride the same rings as ordinary
//! frames, so the checkpoint/replay machinery of the fault-tolerant runner
//! works unchanged — the `backend_differential` and `fault_injection`
//! suites hold `Spsc` to the same bit-for-bit equality against `InProc`
//! and the exact reference that the TCP backend already passes.
//!
//! ## Ordering and closure protocol
//!
//! Each ring is a classic Lamport queue: the producer owns `tail`, the
//! consumer owns `head`, and each caches the other's index to avoid
//! touching the shared line until the cached bound is exhausted. A push is
//! `write slot; tail.store(Release)`; a pop is `read slot;
//! head.store(Release)`; the paired `Acquire` loads make the slot contents
//! visible. Indices grow monotonically (they would take centuries of
//! batches to wrap a `u64`-sized `usize`), so full is `tail - head == cap`
//! and empty is `tail == head`.
//!
//! Closure runs in both directions. Toward the senders, each ring carries a
//! `consumer_gone` flag (set on receiver drop, `Release`) plus a
//! channel-level `receiver_gone`, so a blocked push fails with
//! [`ChannelClosed`] instead of spinning forever. Toward the receiver, an
//! atomic count of live sender handles protects the lane set as a whole:
//! the receiver reports [`RecvError::Closed`] only after it loads a handle
//! count of zero (`Acquire`, which synchronizes with every handle's
//! `Release` decrement and therefore with every push and lane claim that
//! preceded it) and then finds every adopted lane empty on one final drain.

use std::cell::{RefCell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use slb_workloads::KeyId;

use crate::transport::{
    ChannelClosed, CorePinning, FeedbackReceiver, FeedbackSender, PartialReceiver, PartialSender,
    PartialWindow, RecvError, ReplayRequest, SourceMessage, Transport, TupleReceiver, TupleSender,
};

/// Pads-and-aligns a value to a cache line so the producer's `tail` and the
/// consumer's `head` never share one — false sharing on those two words
/// would reintroduce the very cross-core traffic the rings exist to avoid.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Exponential backoff for the transient-full / transient-empty loops:
/// spin a few times (the common case resolves in nanoseconds while the
/// peer drains or fills a slot), then yield the core, then sleep in 50 µs
/// ticks so a long-idle stage (a worker between bursts, an aggregator
/// waiting for window closes) does not burn its pinned core.
struct Backoff(u32);

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    fn new() -> Self {
        Backoff(0)
    }

    fn snooze(&mut self) {
        if self.0 < Self::SPIN_LIMIT {
            for _ in 0..(1u32 << self.0) {
                std::hint::spin_loop();
            }
        } else if self.0 < Self::YIELD_LIMIT {
            thread::yield_now();
        } else {
            thread::sleep(Duration::from_micros(50));
        }
        self.0 = (self.0 + 1).min(Self::YIELD_LIMIT);
    }
}

/// The storage one SPSC ring shares between its producer and consumer.
struct RingShared<T> {
    /// `cap` slots; slot `i % cap` holds the value pushed at index `i`.
    /// Initialized iff the index is in `[head, tail)`.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next index the consumer will pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next index the producer will push. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    /// Set (Release) when the consumer handle drops: pushes can stop
    /// blocking, the values will never be read. (There is no producer-side
    /// twin: end-of-stream is decided per *channel* by the live handle
    /// count in [`EdgeShared`], not per ring.)
    consumer_gone: AtomicBool,
}

// SAFETY: the ring hands each `T` from exactly one thread (the producer,
// which wrote the slot before its Release store of `tail`) to exactly one
// other thread (the consumer, whose Acquire load of `tail` ordered the
// write before the read). No `&T` is ever shared across threads, so
// `T: Send` suffices; the `UnsafeCell` slots are only touched per the
// index protocol above.
unsafe impl<T: Send> Send for RingShared<T> {}
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> RingShared<T> {
    fn new(cap: usize) -> Arc<Self> {
        assert!(cap > 0, "rings need at least one slot");
        Arc::new(RingShared {
            buf: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            cap,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
            consumer_gone: AtomicBool::new(false),
        })
    }
}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Sole owner at this point (`Arc` guarantees it), so the atomics
        // are plain memory: drop the unconsumed values in `[head, tail)`.
        let mut i = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        while i != tail {
            // SAFETY: indices in `[head, tail)` hold initialized values
            // the consumer never popped.
            unsafe { self.buf[i % self.cap].get_mut().assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

/// The producing half of one ring. Not a public handle — senders own these
/// inside their claimed lane.
struct Producer<T> {
    ring: Arc<RingShared<T>>,
    /// Local copy of `ring.tail` (only this side writes it).
    tail: usize,
    /// Last observed `ring.head`; refreshed only when the ring looks full.
    cached_head: usize,
}

impl<T> Producer<T> {
    fn try_push(&mut self, value: T) -> Result<(), T> {
        if self.tail.wrapping_sub(self.cached_head) == self.ring.cap {
            self.cached_head = self.ring.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == self.ring.cap {
                return Err(value);
            }
        }
        // SAFETY: the slot at `tail` is outside `[head, tail)`, so the
        // consumer will not touch it until the Release store below
        // publishes it; only this producer writes slots.
        unsafe { (*self.ring.buf[self.tail % self.ring.cap].get()).write(value) };
        self.tail = self.tail.wrapping_add(1);
        self.ring.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// True once the consuming half has been dropped: pushed values would
    /// never be read, so blocking senders give up with [`ChannelClosed`].
    fn consumer_gone(&self) -> bool {
        self.ring.consumer_gone.load(Ordering::Acquire)
    }

    /// Values currently in the ring — a racy telemetry snapshot. `tail` is
    /// this producer's own exact index; the consumer's `head` is loaded
    /// Relaxed, so the result can only over-estimate (the consumer drains
    /// concurrently), which is the safe direction for a high-water mark.
    fn occupancy(&self) -> usize {
        self.tail
            .wrapping_sub(self.ring.head.0.load(Ordering::Relaxed))
    }
}

/// The consuming half of one ring.
struct Consumer<T> {
    ring: Arc<RingShared<T>>,
    /// Local copy of `ring.head` (only this side writes it).
    head: usize,
    /// Last observed `ring.tail`; refreshed only when the ring looks empty.
    cached_tail: usize,
}

impl<T> Consumer<T> {
    fn try_pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: `head < cached_tail` (monotone indices), and the Acquire
        // load of `tail` ordered the producer's slot write before this
        // read; only this consumer reads initialized slots.
        let value = unsafe { (*self.ring.buf[self.head % self.ring.cap].get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.ring.head.0.store(self.head, Ordering::Release);
        Some(value)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.ring.consumer_gone.store(true, Ordering::Release);
    }
}

fn ring_pair<T>(cap: usize) -> (Producer<T>, Consumer<T>) {
    let ring = RingShared::new(cap);
    (
        Producer {
            ring: Arc::clone(&ring),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            ring,
            head: 0,
            cached_tail: 0,
        },
    )
}

/// One claimed lane, sender side: the forward ring's producer plus (on
/// tuple channels) the recycling ring's consumer.
struct LaneTx<T> {
    producer: Producer<T>,
    recycle_rx: Option<Consumer<Vec<KeyId>>>,
}

/// One claimed lane, receiver side.
struct LaneRx<T> {
    consumer: Consumer<T>,
    recycle_tx: Option<Producer<Vec<KeyId>>>,
}

/// Per-channel shared state tying the lanes together: the handle count
/// drives the closure protocol, the `pending` mailbox hands freshly claimed
/// lanes from sender threads to the receiver. The mailbox lock is touched
/// once per lane claim (once per sender thread per run), never per message.
struct EdgeShared<T> {
    /// Forward-ring capacity for every lane of this channel.
    capacity: usize,
    /// Whether lanes carry a reverse recycling ring (tuple channels only).
    recycle: bool,
    /// Live sender handles (clones). Decremented with Release on drop;
    /// a receiver that loads zero with Acquire has therefore observed
    /// every claim and every push that any handle ever made.
    handles: AtomicUsize,
    /// Lanes claimed but not yet adopted by the receiver.
    pending: Mutex<Vec<LaneRx<T>>>,
    /// Count of lanes ever pushed to `pending` — a lock-free fast path so
    /// the receiver only takes the mailbox lock when something is new.
    announced: AtomicUsize,
    /// Set when the receiver drops, so senders fail fast instead of
    /// blocking forever on a lane nobody will ever drain.
    receiver_gone: AtomicBool,
}

impl<T> EdgeShared<T> {
    fn claim_lane(&self) -> LaneTx<T> {
        let (producer, consumer) = ring_pair::<T>(self.capacity);
        let (recycle_tx, recycle_rx) = if self.recycle {
            let (tx, rx) = ring_pair::<Vec<KeyId>>(self.capacity);
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        self.pending
            .lock()
            .expect("lane mailbox poisoned")
            .push(LaneRx {
                consumer,
                recycle_tx,
            });
        self.announced.fetch_add(1, Ordering::Release);
        LaneTx {
            producer,
            recycle_rx,
        }
    }
}

/// Sending half of an SPSC channel. Cloning yields an independent handle
/// with its own (lazily claimed) lane, which is what makes every lane
/// single-producer: the run loop clones one handle per stage thread and
/// never shares a clone across threads.
pub struct SpscSender<T> {
    edge: Arc<EdgeShared<T>>,
    lane: RefCell<Option<LaneTx<T>>>,
}

impl<T> Clone for SpscSender<T> {
    fn clone(&self) -> Self {
        self.edge.handles.fetch_add(1, Ordering::Relaxed);
        SpscSender {
            edge: Arc::clone(&self.edge),
            lane: RefCell::new(None),
        }
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        // The lane (and with it the ring's `producer_gone` flag) drops
        // first — field order — so by the time the count hits zero every
        // lane is individually marked finished.
        self.lane.borrow_mut().take();
        self.edge.handles.fetch_sub(1, Ordering::Release);
    }
}

impl<T: Send + 'static> SpscSender<T> {
    /// Blocks until the lane has room, then enqueues `value`. Fails once
    /// the receiver is gone — matching the disconnect-on-drop contract of
    /// every other backend.
    fn send_value(&self, value: T) -> Result<(), ChannelClosed> {
        let mut lane_slot = self.lane.borrow_mut();
        let lane = match lane_slot.as_mut() {
            Some(lane) => lane,
            None => {
                if self.edge.receiver_gone.load(Ordering::Acquire) {
                    return Err(ChannelClosed);
                }
                lane_slot.insert(self.edge.claim_lane())
            }
        };
        let mut value = value;
        let mut backoff = Backoff::new();
        loop {
            if lane.producer.consumer_gone() || self.edge.receiver_gone.load(Ordering::Acquire) {
                return Err(ChannelClosed);
            }
            match lane.producer.try_push(value) {
                Ok(()) => return Ok(()),
                Err(back) => {
                    value = back;
                    backoff.snooze();
                }
            }
        }
    }

    /// A spent batch buffer returned by the receiver, if one is waiting on
    /// this handle's recycling ring.
    fn pop_recycled(&self) -> Option<Vec<KeyId>> {
        self.lane
            .borrow_mut()
            .as_mut()?
            .recycle_rx
            .as_mut()?
            .try_pop()
    }

    /// `(queued, capacity)` of this handle's *own lane* — each clone owns a
    /// private ring, so that is the queue whose depth this sender can
    /// actually observe (and the one its sends block on).
    fn lane_depth(&self) -> (usize, usize) {
        let occupied = self
            .lane
            .borrow()
            .as_ref()
            .map_or(0, |lane| lane.producer.occupancy());
        (occupied, self.edge.capacity)
    }
}

/// Receiver-side mutable state, behind a `RefCell` so the `&self` trait
/// surface works without making the receiver `Sync` (receivers are owned
/// by exactly one stage thread).
struct RxInner<T> {
    lanes: Vec<LaneRx<T>>,
    /// How many announced lanes have been adopted into `lanes`.
    adopted: usize,
    /// Round-robin cursors: where the next drain pass starts, and which
    /// lane receives the next recycled buffer.
    next_lane: usize,
    next_recycle: usize,
}

/// Receiving half of an SPSC channel: adopts every lane the senders claim
/// and drains them round-robin, which preserves the per-sender FIFO each
/// ring provides (the punctuation protocol needs nothing more — cross-
/// sender interleaving is explicitly arbitrary).
pub struct SpscReceiver<T> {
    edge: Arc<EdgeShared<T>>,
    inner: RefCell<RxInner<T>>,
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        self.edge.receiver_gone.store(true, Ordering::Release);
        // Adopt-and-drop any lanes still in the mailbox so their
        // `consumer_gone` flags release senders blocked on a full ring. A
        // lane claimed after this drain is caught by `receiver_gone` in
        // the sender's push loop instead.
        self.edge
            .pending
            .lock()
            .expect("lane mailbox poisoned")
            .clear();
    }
}

impl<T: Send + 'static> SpscReceiver<T> {
    /// Adopts every lane announced since the last call.
    fn adopt_lanes(&self, inner: &mut RxInner<T>) {
        if self.edge.announced.load(Ordering::Acquire) > inner.adopted {
            let mut pending = self.edge.pending.lock().expect("lane mailbox poisoned");
            inner.adopted += pending.len();
            inner.lanes.append(&mut pending);
        }
    }

    /// Pops everything currently visible across all lanes into `out`.
    /// One bounded pass per lane (rings hold at most `capacity` values),
    /// starting at the round-robin cursor for cross-lane fairness.
    fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let inner = &mut *self.inner.borrow_mut();
        self.adopt_lanes(inner);
        let n_lanes = inner.lanes.len();
        if n_lanes == 0 {
            return 0;
        }
        let start = inner.next_lane % n_lanes;
        inner.next_lane = (start + 1) % n_lanes;
        let mut drained = 0;
        for offset in 0..n_lanes {
            let lane = &mut inner.lanes[(start + offset) % n_lanes];
            while let Some(value) = lane.consumer.try_pop() {
                out.push(value);
                drained += 1;
            }
        }
        drained
    }

    /// Pops at most one value, round-robin across lanes.
    fn pop_one(&self) -> Option<T> {
        let inner = &mut *self.inner.borrow_mut();
        self.adopt_lanes(inner);
        let n_lanes = inner.lanes.len();
        for _ in 0..n_lanes {
            let at = inner.next_lane % n_lanes;
            inner.next_lane = (at + 1) % n_lanes;
            if let Some(value) = inner.lanes[at].consumer.try_pop() {
                return Some(value);
            }
        }
        None
    }

    /// True once no sender handle survives and nothing is left to drain.
    /// Call only after a drain produced nothing; the final re-drain is the
    /// caller's (the Acquire load here is what makes it conclusive).
    fn all_senders_gone(&self) -> bool {
        self.edge.handles.load(Ordering::Acquire) == 0
    }

    /// Blocks until at least one value arrives, appending all visible ones.
    fn recv_batch_blocking(&self, out: &mut Vec<T>) -> Result<usize, RecvError> {
        let mut backoff = Backoff::new();
        loop {
            let drained = self.drain_into(out);
            if drained > 0 {
                return Ok(drained);
            }
            if self.all_senders_gone() {
                // The zero handle count happened-after every claim and
                // push (Release/Acquire on the counter), so one final
                // drain sees everything that was ever sent.
                let drained = self.drain_into(out);
                if drained > 0 {
                    return Ok(drained);
                }
                return Err(RecvError::Closed);
            }
            backoff.snooze();
        }
    }

    /// Hands a spent batch buffer back to a sender's recycling ring
    /// (round-robin; dropped when every ring is full or recycling is off).
    fn push_recycled(&self, keys: Vec<KeyId>) {
        if !self.edge.recycle {
            return;
        }
        let inner = &mut *self.inner.borrow_mut();
        self.adopt_lanes(inner);
        let n_lanes = inner.lanes.len();
        let mut keys = keys;
        for _ in 0..n_lanes {
            let at = inner.next_recycle % n_lanes;
            inner.next_recycle = (at + 1) % n_lanes;
            let Some(tx) = inner.lanes[at].recycle_tx.as_mut() else {
                continue;
            };
            match tx.try_push(keys) {
                Ok(()) => return,
                Err(back) => keys = back,
            }
        }
    }
}

/// Builds one channel: the receiver plus a first sender handle to clone
/// per sending stage thread.
fn edge<T: Send + 'static>(capacity: usize, recycle: bool) -> (SpscSender<T>, SpscReceiver<T>) {
    let shared = Arc::new(EdgeShared {
        capacity,
        recycle,
        handles: AtomicUsize::new(1),
        pending: Mutex::new(Vec::new()),
        announced: AtomicUsize::new(0),
        receiver_gone: AtomicBool::new(false),
    });
    (
        SpscSender {
            edge: Arc::clone(&shared),
            lane: RefCell::new(None),
        },
        SpscReceiver {
            edge: shared,
            inner: RefCell::new(RxInner {
                lanes: Vec::new(),
                adopted: 0,
                next_lane: 0,
                next_recycle: 0,
            }),
        },
    )
}

impl TupleSender for SpscSender<SourceMessage> {
    fn send(&self, message: SourceMessage) -> Result<(), ChannelClosed> {
        self.send_value(message)
    }

    fn take_recycled(&self) -> Option<Vec<KeyId>> {
        self.pop_recycled()
    }

    fn queue_depth_hint(&self) -> Option<(usize, usize)> {
        Some(self.lane_depth())
    }
}

impl TupleReceiver for SpscReceiver<SourceMessage> {
    fn recv_batch(&self, out: &mut Vec<SourceMessage>) -> Result<usize, RecvError> {
        self.recv_batch_blocking(out)
    }

    fn recycle(&self, keys: Vec<KeyId>) {
        self.push_recycled(keys);
    }
}

impl<P: Send + 'static> PartialSender<P> for SpscSender<PartialWindow<P>> {
    fn send(&self, message: PartialWindow<P>) -> Result<(), ChannelClosed> {
        self.send_value(message)
    }
}

impl<P: Send + 'static> PartialReceiver<P> for SpscReceiver<PartialWindow<P>> {
    fn recv_batch(&self, out: &mut Vec<PartialWindow<P>>) -> Result<usize, RecvError> {
        self.recv_batch_blocking(out)
    }
}

impl FeedbackSender for SpscSender<ReplayRequest> {
    fn send(&self, request: ReplayRequest) -> Result<(), ChannelClosed> {
        self.send_value(request)
    }
}

impl FeedbackReceiver for SpscReceiver<ReplayRequest> {
    fn try_recv(&self) -> Result<Option<ReplayRequest>, ChannelClosed> {
        if let Some(request) = self.pop_one() {
            return Ok(Some(request));
        }
        if self.all_senders_gone() {
            // Final conclusive poll after the Acquire on the handle count.
            return match self.pop_one() {
                Some(request) => Ok(Some(request)),
                None => Err(ChannelClosed),
            };
        }
        Ok(None)
    }

    fn recv(&self) -> Result<ReplayRequest, ChannelClosed> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_recv() {
                Ok(Some(request)) => return Ok(request),
                Ok(None) => backoff.snooze(),
                Err(closed) => return Err(closed),
            }
        }
    }
}

/// The thread-per-core transport (see the module docs). A unit struct:
/// all per-channel state lives in the endpoints it creates.
#[derive(Debug, Clone, Copy, Default)]
pub struct Spsc;

impl<P: Send + 'static> Transport<P> for Spsc {
    type TupleTx = SpscSender<SourceMessage>;
    type TupleRx = SpscReceiver<SourceMessage>;
    type PartialTx = SpscSender<PartialWindow<P>>;
    type PartialRx = SpscReceiver<PartialWindow<P>>;
    type FeedbackTx = SpscSender<ReplayRequest>;
    type FeedbackRx = SpscReceiver<ReplayRequest>;

    fn tuple_channels(
        &self,
        workers: usize,
        capacity_batches: usize,
    ) -> (Vec<Self::TupleTx>, Vec<Self::TupleRx>) {
        (0..workers)
            .map(|_| edge::<SourceMessage>(capacity_batches, true))
            .unzip()
    }

    fn partial_channels(
        &self,
        aggregators: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::PartialTx>, Vec<Self::PartialRx>) {
        (0..aggregators)
            .map(|_| edge::<PartialWindow<P>>(capacity_messages, false))
            .unzip()
    }

    fn feedback_channels(
        &self,
        sources: usize,
        capacity_messages: usize,
    ) -> (Vec<Self::FeedbackTx>, Vec<Self::FeedbackRx>) {
        (0..sources)
            .map(|_| edge::<ReplayRequest>(capacity_messages, false))
            .unzip()
    }

    fn core_pinning(
        &self,
        sources: usize,
        workers: usize,
        aggregators: usize,
    ) -> Option<CorePinning> {
        Some(CorePinning::new(sources, workers, aggregators))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_push_pop_fifo_and_wraparound() {
        let (mut tx, mut rx) = ring_pair::<u64>(3);
        // Several times around the 3-slot ring: order is preserved and
        // full/empty boundaries behave.
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for _ in 0..10 {
            while tx.try_push(next_push).is_ok() {
                next_push += 1;
            }
            assert_eq!(next_push - next_pop, 3, "ring reports full at capacity");
            while let Some(v) = rx.try_pop() {
                assert_eq!(v, next_pop);
                next_pop += 1;
            }
            assert_eq!(next_push, next_pop, "ring drains to empty");
        }
    }

    #[test]
    fn ring_drop_releases_unconsumed_values() {
        let value = Arc::new(());
        let (mut tx, rx) = ring_pair::<Arc<()>>(4);
        for _ in 0..3 {
            tx.try_push(Arc::clone(&value)).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&value), 1, "ring dropped its 3 clones");
    }

    #[test]
    fn sender_clones_get_private_lanes_and_close_cleanly() {
        let (tx, rx) = edge::<SourceMessage>(2, false);
        let tx2 = tx.clone();
        // Each clone sends from its own thread: the 2-slot rings force the
        // senders to block on a full lane until the receiver drains it.
        let producers: Vec<_> = [(0usize, tx), (1usize, tx2)]
            .into_iter()
            .map(|(source, tx)| {
                thread::spawn(move || {
                    for seq in 0..5u64 {
                        TupleSender::send(
                            &tx,
                            SourceMessage::CloseWindow {
                                window: seq,
                                source,
                                seq,
                            },
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        let mut out = Vec::new();
        let mut total = 0;
        loop {
            match TupleReceiver::recv_batch(&rx, &mut out) {
                Ok(n) => total += n,
                Err(RecvError::Closed) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(total, 10);
        // FIFO per source even though the rings only hold 2 frames each.
        for source in 0..2 {
            let seqs: Vec<u64> = out
                .iter()
                .filter(|m| m.source_seq().0 == source)
                .map(|m| m.source_seq().1)
                .collect();
            assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn send_fails_once_receiver_drops() {
        let (tx, rx) = edge::<ReplayRequest>(2, false);
        let request = ReplayRequest {
            worker: 0,
            from_seq: 0,
        };
        FeedbackSender::send(&tx, request).unwrap();
        drop(rx);
        assert_eq!(FeedbackSender::send(&tx, request), Err(ChannelClosed));
        // A handle that never claimed a lane fails fast too.
        let fresh = tx.clone();
        assert_eq!(FeedbackSender::send(&fresh, request), Err(ChannelClosed));
    }

    #[test]
    fn recycling_round_trips_buffers() {
        let (tx, rx) = edge::<SourceMessage>(4, true);
        assert!(tx.take_recycled().is_none(), "no lane claimed yet");
        TupleSender::send(
            &tx,
            SourceMessage::CloseWindow {
                window: 0,
                source: 0,
                seq: 0,
            },
        )
        .unwrap();
        assert!(tx.take_recycled().is_none(), "nothing recycled yet");
        rx.recycle(vec![1, 2, 3]);
        let buf = tx.take_recycled().expect("buffer came back");
        assert_eq!(buf, vec![1, 2, 3]);
        assert!(tx.take_recycled().is_none(), "ring is drained");
    }

    #[test]
    fn blocking_send_waits_for_consumer() {
        let (tx, rx) = edge::<ReplayRequest>(2, false);
        let producer = thread::spawn(move || {
            for from_seq in 0..100u64 {
                FeedbackSender::send(
                    &tx,
                    ReplayRequest {
                        worker: 0,
                        from_seq,
                    },
                )
                .unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(request) = FeedbackReceiver::recv(&rx) {
            got.push(request.from_seq);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
