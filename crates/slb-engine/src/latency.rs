//! Per-tuple latency recording and summarization.
//!
//! The paper reports, per grouping scheme, the maximum of the per-worker
//! average latencies together with the 50th, 95th and 99th percentiles
//! across all workers (Figure 14). Workers record each tuple's end-to-end
//! latency (emit time at the source to completion time at the worker); the
//! summaries are computed after the run.

use serde::{Deserialize, Serialize};

/// Collects individual latency samples (in microseconds) for one worker.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    samples_us: Vec<u64>,
}

impl LatencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            samples_us: Vec::new(),
        }
    }

    /// Creates a tracker pre-allocating room for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples_us: Vec::with_capacity(capacity),
        }
    }

    /// Records one latency sample in microseconds.
    #[inline]
    pub fn record_us(&mut self, micros: u64) {
        self.samples_us.push(micros);
    }

    /// Records the same latency for `count` tuples at once — used by the
    /// batched engine, where every tuple of a drained batch shares one
    /// timestamped emit instant.
    #[inline]
    pub fn record_many_us(&mut self, micros: u64, count: u64) {
        self.samples_us
            .resize(self.samples_us.len() + count as usize, micros);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64
    }

    /// The raw samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples_us
    }

    /// Merges the samples of several trackers and produces a summary, also
    /// reporting the maximum per-tracker mean (the paper's "max avg").
    pub fn summarize(trackers: &[LatencyTracker]) -> LatencySummary {
        let all: Vec<u64> = trackers
            .iter()
            .flat_map(|t| t.samples_us.iter().copied())
            .collect();
        let max_avg_us = trackers
            .iter()
            .filter(|t| !t.is_empty())
            .map(LatencyTracker::mean_us)
            .fold(0.0f64, f64::max);
        Self::summary_of(all, max_avg_us)
    }

    /// Summarizes a phase-major tracker matrix (`trackers[phase][worker]`),
    /// grouping by worker for the "max avg" statistic. Equivalent to merging
    /// each worker's per-phase trackers first and calling
    /// [`Self::summarize`], but flattens the samples once instead of
    /// materializing per-worker copies (which would double a multi-phase
    /// run's latency-sample memory at join time).
    pub fn summarize_by_worker(phase_major: &[Vec<LatencyTracker>]) -> LatencySummary {
        let workers = phase_major.first().map_or(0, Vec::len);
        let total: usize = phase_major.iter().flatten().map(LatencyTracker::len).sum();
        let mut all: Vec<u64> = Vec::with_capacity(total);
        let mut max_avg_us = 0.0f64;
        for worker in 0..workers {
            let mut sum = 0u64;
            let mut count = 0u64;
            for row in phase_major {
                let tracker = &row[worker];
                sum += tracker.samples_us.iter().sum::<u64>();
                count += tracker.len() as u64;
                all.extend_from_slice(&tracker.samples_us);
            }
            if count > 0 {
                max_avg_us = max_avg_us.max(sum as f64 / count as f64);
            }
        }
        Self::summary_of(all, max_avg_us)
    }

    /// Percentile/mean summary over an unsorted sample vector.
    fn summary_of(mut all: Vec<u64>, max_avg_us: f64) -> LatencySummary {
        if all.is_empty() {
            return LatencySummary::default();
        }
        all.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((all.len() as f64 - 1.0) * p).round() as usize;
            all[idx]
        };
        LatencySummary {
            samples: all.len() as u64,
            mean_us: all.iter().sum::<u64>() as f64 / all.len() as f64,
            max_avg_us,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: *all.last().expect("non-empty"),
        }
    }
}

/// Summary statistics over all recorded latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub samples: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Maximum of the per-worker mean latencies, microseconds.
    pub max_avg_us: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Maximum observed latency, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us / 1_000.0
    }

    /// 99th percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_us as f64 / 1_000.0
    }
}

/// Throughput and latency of one topology stage.
///
/// The unit of `items` differs per stage: the worker stage counts tuples,
/// the aggregator stage counts partial-window messages (one per closed
/// window per worker per shard), because that is what each stage's threads
/// actually receive and process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Items processed by the stage over the whole run.
    pub items: u64,
    /// Items per second of wall-clock run time.
    pub items_per_sec: f64,
    /// Latency distribution of the stage's items (worker stage: source emit
    /// → worker completion; aggregator stage: worker window close →
    /// aggregator merge).
    pub latency: LatencySummary,
    /// Fault-recovery accounting for the stage. All zero in a fault-free
    /// run — the determinism suite pins that.
    pub recovery: RecoveryMetrics,
}

/// Counters for the exactly-once recovery machinery of one stage.
///
/// In the worker stage, `restores` counts checkpoint restorations after a
/// crash, `replayed_items` counts tuples reprocessed from replayed batches,
/// and `duplicates_dropped` counts messages discarded by sequence-number
/// dedup. In the aggregator stage only `duplicates_dropped` is meaningful:
/// re-sent (worker, window) partials discarded instead of double-merged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryMetrics {
    /// Checkpoint restorations performed after simulated crashes.
    pub restores: u64,
    /// Items reprocessed from replayed messages (already counted once in
    /// `items` — this tracks the recovery overhead, not extra output).
    pub replayed_items: u64,
    /// Messages discarded as duplicates by sequence/worker dedup.
    pub duplicates_dropped: u64,
    /// Replay requests issued upstream (gap detected or post-crash resume).
    pub replay_requests: u64,
    /// Transport-level receive errors survived (a reader thread reporting a
    /// malformed frame or failed read instead of a clean EOF). Zero on a
    /// healthy run; nonzero means a peer died mid-frame and the stage kept
    /// going on the remaining connections.
    pub transport_errors: u64,
}

impl RecoveryMetrics {
    /// True when no recovery machinery fired.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }

    /// Field-wise sum of two counters (for merging per-thread reports).
    pub fn merged(self, other: Self) -> Self {
        Self {
            restores: self.restores + other.restores,
            replayed_items: self.replayed_items + other.replayed_items,
            duplicates_dropped: self.duplicates_dropped + other.duplicates_dropped,
            replay_requests: self.replay_requests + other.replay_requests,
            transport_errors: self.transport_errors + other.transport_errors,
        }
    }
}

impl StageMetrics {
    /// Builds stage metrics from raw counts and the run's elapsed seconds.
    pub fn new(items: u64, elapsed_secs: f64, latency: LatencySummary) -> Self {
        Self {
            items,
            items_per_sec: if elapsed_secs > 0.0 {
                items as f64 / elapsed_secs
            } else {
                0.0
            },
            latency,
            recovery: RecoveryMetrics::default(),
        }
    }

    /// Same as [`Self::new`] with explicit recovery counters.
    pub fn with_recovery(
        items: u64,
        elapsed_secs: f64,
        latency: LatencySummary,
        recovery: RecoveryMetrics,
    ) -> Self {
        Self {
            recovery,
            ..Self::new(items, elapsed_secs, latency)
        }
    }
}

/// Measurements of one phase of a (possibly multi-phase) engine run.
///
/// A plain [`crate::EngineConfig`] run is the one-phase special case: it
/// reports exactly one `PhaseMetrics` covering the whole run. A scenario run
/// reports one entry per [`slb_workloads::ScenarioPhase`], each evaluated
/// over the phase's *active* worker set — the meaningful imbalance when the
/// cluster resizes mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Phase index within the run.
    pub phase: usize,
    /// Active workers during the phase.
    pub workers: usize,
    /// Global index of the phase's first window.
    pub start_window: u64,
    /// Number of windows the phase covers (per source).
    pub windows: u64,
    /// Per-worker processed-tuple counts over the active worker set.
    pub worker_counts: Vec<u64>,
    /// Imbalance of `worker_counts` (the paper's `I` over active workers).
    pub imbalance: f64,
    /// Tuples, throughput over the phase's observed span, and the phase's
    /// end-to-end latency distribution.
    pub stage: StageMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles_of_known_samples() {
        let mut t = LatencyTracker::new();
        for v in 1..=100u64 {
            t.record_us(v);
        }
        assert_eq!(t.len(), 100);
        assert!((t.mean_us() - 50.5).abs() < 1e-9);
        let s = LatencyTracker::summarize(&[t]);
        assert_eq!(s.samples, 100);
        // Nearest-rank on the sorted samples 1..=100: index round(99·p).
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn record_many_matches_repeated_record() {
        let mut a = LatencyTracker::new();
        let mut b = LatencyTracker::new();
        a.record_many_us(7, 5);
        a.record_many_us(3, 0);
        for _ in 0..5 {
            b.record_us(7);
        }
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn summarize_reports_max_of_worker_means() {
        let mut fast = LatencyTracker::new();
        let mut slow = LatencyTracker::new();
        for _ in 0..10 {
            fast.record_us(100);
            slow.record_us(10_000);
        }
        let s = LatencyTracker::summarize(&[fast, slow]);
        assert!((s.max_avg_us - 10_000.0).abs() < 1e-9);
        assert_eq!(s.samples, 20);
    }

    #[test]
    fn empty_trackers_summarize_to_zeros() {
        let s = LatencyTracker::summarize(&[LatencyTracker::new(), LatencyTracker::new()]);
        assert_eq!(s, LatencySummary::default());
        assert_eq!(
            LatencyTracker::summarize_by_worker(&[]),
            LatencySummary::default()
        );
        assert_eq!(
            LatencyTracker::summarize_by_worker(&[vec![LatencyTracker::new()]]),
            LatencySummary::default()
        );
    }

    #[test]
    fn summarize_by_worker_matches_merged_per_worker_summarize() {
        // Phase-major matrix: 3 phases × 2 workers with distinct sample runs.
        let tracker = |values: &[u64]| {
            let mut t = LatencyTracker::new();
            for &v in values {
                t.record_us(v);
            }
            t
        };
        let phase_major = vec![
            vec![tracker(&[10, 20]), tracker(&[1_000])],
            vec![tracker(&[]), tracker(&[2_000, 3_000])],
            vec![tracker(&[30]), tracker(&[4_000])],
        ];
        // Reference: merge each worker's phases by hand, then summarize.
        let merged = vec![
            tracker(&[10, 20, 30]),
            tracker(&[1_000, 2_000, 3_000, 4_000]),
        ];
        assert_eq!(
            LatencyTracker::summarize_by_worker(&phase_major),
            LatencyTracker::summarize(&merged)
        );
    }

    #[test]
    fn single_sample_summary() {
        let mut t = LatencyTracker::new();
        t.record_us(42);
        let s = LatencyTracker::summarize(&[t]);
        assert_eq!(s.p50_us, 42);
        assert_eq!(s.p99_us, 42);
        assert_eq!(s.max_us, 42);
        assert!((s.mean_us - 42.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_metrics_merge_field_wise_and_default_is_quiet() {
        assert!(RecoveryMetrics::default().is_quiet());
        let a = RecoveryMetrics {
            restores: 1,
            replayed_items: 10,
            duplicates_dropped: 3,
            replay_requests: 2,
            transport_errors: 1,
        };
        let b = RecoveryMetrics {
            restores: 0,
            replayed_items: 5,
            duplicates_dropped: 1,
            replay_requests: 1,
            transport_errors: 0,
        };
        let m = a.merged(b);
        assert_eq!(
            m,
            RecoveryMetrics {
                restores: 1,
                replayed_items: 15,
                duplicates_dropped: 4,
                replay_requests: 3,
                transport_errors: 1,
            }
        );
        assert!(!m.is_quiet());
    }

    #[test]
    fn unit_conversions() {
        let s = LatencySummary {
            mean_us: 1_500.0,
            p99_us: 2_000,
            ..Default::default()
        };
        assert!((s.mean_ms() - 1.5).abs() < 1e-12);
        assert!((s.p99_ms() - 2.0).abs() < 1e-12);
    }
}
