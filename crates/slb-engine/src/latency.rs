//! Per-tuple latency recording and summarization.
//!
//! The paper reports, per grouping scheme, the maximum of the per-worker
//! average latencies together with the 50th, 95th and 99th percentiles
//! across all workers (Figure 14). Workers record each tuple's end-to-end
//! latency (emit time at the source to completion time at the worker); the
//! summaries are computed after the run.
//!
//! # Storage and the percentile error bound
//!
//! A tracker always feeds a bounded [`LogHistogram`] (exact `count`,
//! `sum`, `min`, `max`; log₂-linear buckets with 16 sub-buckets per
//! octave) and *additionally* retains raw samples up to a cap, so long
//! runs no longer grow memory without bound. While every recording is
//! still retained, summaries use the exact nearest-rank percentiles over
//! the raw samples — bit-identical to the historical behavior, which is
//! what the differential suites compare. Once a tracker overflows the
//! cap, summaries switch to histogram quantiles, which **under-report by
//! strictly less than 2⁻⁴ = 6.25 % relative error** (each bucket spans
//! 1/16 of its octave and quantiles report the bucket floor); `samples`,
//! `mean_us`, `max_avg_us`, and `max_us` stay exact in either mode.
//!
//! The cap is `SLB_LATENCY_RETAIN`: unset defaults to
//! [`DEFAULT_SAMPLE_RETENTION`], a number overrides it (`0` = bucketed
//! only), and `exact` disables the cap for tests that need unbounded raw
//! retention. A malformed value fails fast at first use, like
//! `SLB_HEARTBEAT_TIMEOUT_MS`.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};
use slb_telemetry::LogHistogram;

/// Raw samples a tracker retains by default before switching summaries to
/// the bucketed path (64 Ki samples = 512 KiB per tracker at most).
pub const DEFAULT_SAMPLE_RETENTION: usize = 65_536;

/// Parses an `SLB_LATENCY_RETAIN` value: `None` (unset) gives
/// [`DEFAULT_SAMPLE_RETENTION`], `"exact"` disables the cap, a number is
/// the cap itself. Anything else is a configuration mistake and panics —
/// fail fast beats silently mis-sized retention.
pub fn parse_sample_retention(value: Option<&str>) -> usize {
    match value {
        None => DEFAULT_SAMPLE_RETENTION,
        Some("exact") => usize::MAX,
        Some(text) => text.parse().unwrap_or_else(|_| {
            panic!("SLB_LATENCY_RETAIN must be `exact` or a sample count, got {text:?}")
        }),
    }
}

/// The process-wide retention cap, resolved from the environment once.
fn sample_retention() -> usize {
    static RETENTION: OnceLock<usize> = OnceLock::new();
    *RETENTION
        .get_or_init(|| parse_sample_retention(std::env::var("SLB_LATENCY_RETAIN").ok().as_deref()))
}

/// Collects latency samples (in microseconds) for one worker: a bounded
/// histogram of everything plus a capped raw-sample prefix (module docs).
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    samples_us: Vec<u64>,
    hist: LogHistogram,
}

impl LatencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker pre-allocating room for `capacity` raw samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples_us: Vec::with_capacity(capacity.min(sample_retention())),
            hist: LogHistogram::new(),
        }
    }

    /// Records one latency sample in microseconds.
    #[inline]
    pub fn record_us(&mut self, micros: u64) {
        self.hist.record(micros);
        if self.samples_us.len() < sample_retention() {
            self.samples_us.push(micros);
        }
    }

    /// Records the same latency for `count` tuples at once — used by the
    /// batched engine, where every tuple of a drained batch shares one
    /// timestamped emit instant. Feeds the histogram in O(1); raw copies
    /// are pushed only up to the retention cap.
    #[inline]
    pub fn record_many_us(&mut self, micros: u64, count: u64) {
        self.hist.record_n(micros, count);
        let room = sample_retention().saturating_sub(self.samples_us.len());
        let keep = (count as usize).min(room);
        if keep > 0 {
            self.samples_us.resize(self.samples_us.len() + keep, micros);
        }
    }

    /// Number of samples recorded (all of them, not just the retained
    /// raw prefix).
    pub fn len(&self) -> usize {
        self.hist.count() as usize
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// True while every recording is still retained raw, i.e. summaries
    /// take the exact nearest-rank path.
    pub fn is_exact(&self) -> bool {
        self.samples_us.len() as u64 == self.hist.count()
    }

    /// Mean latency in microseconds (0 when empty). Exact in both modes
    /// (the histogram tracks the exact sum).
    pub fn mean_us(&self) -> f64 {
        self.hist.mean()
    }

    /// The retained raw samples — the full recording while
    /// [`Self::is_exact`], a capped prefix after.
    pub fn samples(&self) -> &[u64] {
        &self.samples_us
    }

    /// The always-fed bounded histogram behind the tracker.
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// The recording as `(value_us, count)` runs for the wire: an exact
    /// run-length encoding of the raw samples while [`Self::is_exact`]
    /// (batched samples compress well — adjacent tuples share an emit
    /// instant), the sparse histogram `(bucket floor, count)` pairs once
    /// the cap overflowed. Bucket floors re-bucket into the same buckets
    /// (`bucket_floor` is a fixed point of `bucket_index`), so a peer
    /// rebuilding a tracker from these runs via [`Self::record_many_us`]
    /// reconstructs the bucket counts exactly; in bucketed mode the
    /// rebuilt mean/min/max inherit the ≤ 6.25 % under-report of the
    /// floors.
    pub fn value_runs(&self) -> Vec<(u64, u64)> {
        if self.is_exact() {
            let mut runs: Vec<(u64, u64)> = Vec::new();
            for &value in &self.samples_us {
                match runs.last_mut() {
                    Some((last, count)) if *last == value => *count += 1,
                    _ => runs.push((value, 1)),
                }
            }
            runs
        } else {
            self.hist
                .nonzero_buckets()
                .into_iter()
                .map(|(bucket, count)| (slb_telemetry::bucket_floor(bucket as usize), count))
                .collect()
        }
    }

    /// Merges the samples of several trackers and produces a summary, also
    /// reporting the maximum per-tracker mean (the paper's "max avg").
    pub fn summarize(trackers: &[LatencyTracker]) -> LatencySummary {
        let max_avg_us = trackers
            .iter()
            .filter(|t| !t.is_empty())
            .map(LatencyTracker::mean_us)
            .fold(0.0f64, f64::max);
        if trackers.iter().all(LatencyTracker::is_exact) {
            let all: Vec<u64> = trackers
                .iter()
                .flat_map(|t| t.samples_us.iter().copied())
                .collect();
            Self::summary_of(all, max_avg_us)
        } else {
            let mut merged = LogHistogram::new();
            for tracker in trackers {
                merged.merge(&tracker.hist);
            }
            Self::summary_of_histogram(&merged, max_avg_us)
        }
    }

    /// Summarizes a phase-major tracker matrix (`trackers[phase][worker]`),
    /// grouping by worker for the "max avg" statistic. Equivalent to merging
    /// each worker's per-phase trackers first and calling
    /// [`Self::summarize`], but flattens the samples once instead of
    /// materializing per-worker copies (which would double a multi-phase
    /// run's latency-sample memory at join time).
    pub fn summarize_by_worker(phase_major: &[Vec<LatencyTracker>]) -> LatencySummary {
        let workers = phase_major.first().map_or(0, Vec::len);
        let mut max_avg_us = 0.0f64;
        for worker in 0..workers {
            let mut merged = LogHistogram::new();
            for row in phase_major {
                merged.merge(&row[worker].hist);
            }
            if !merged.is_empty() {
                max_avg_us = max_avg_us.max(merged.mean());
            }
        }
        let exact = phase_major.iter().flatten().all(LatencyTracker::is_exact);
        if exact {
            let total: usize = phase_major
                .iter()
                .flatten()
                .map(|t| t.samples_us.len())
                .sum();
            let mut all: Vec<u64> = Vec::with_capacity(total);
            for row in phase_major {
                for tracker in row {
                    all.extend_from_slice(&tracker.samples_us);
                }
            }
            Self::summary_of(all, max_avg_us)
        } else {
            let mut merged = LogHistogram::new();
            for tracker in phase_major.iter().flatten() {
                merged.merge(&tracker.hist);
            }
            Self::summary_of_histogram(&merged, max_avg_us)
        }
    }

    /// Exact percentile/mean summary over an unsorted sample vector.
    fn summary_of(mut all: Vec<u64>, max_avg_us: f64) -> LatencySummary {
        if all.is_empty() {
            return LatencySummary::default();
        }
        all.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((all.len() as f64 - 1.0) * p).round() as usize;
            all[idx]
        };
        LatencySummary {
            samples: all.len() as u64,
            mean_us: all.iter().map(|&v| v as u128).sum::<u128>() as f64 / all.len() as f64,
            max_avg_us,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: *all.last().expect("non-empty"),
        }
    }

    /// Bucketed summary for trackers past the retention cap: percentiles
    /// from histogram quantiles (< 6.25 % under-report, module docs);
    /// samples, mean, and max stay exact.
    fn summary_of_histogram(hist: &LogHistogram, max_avg_us: f64) -> LatencySummary {
        if hist.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            samples: hist.count(),
            mean_us: hist.mean(),
            max_avg_us,
            p50_us: hist.quantile(0.50),
            p95_us: hist.quantile(0.95),
            p99_us: hist.quantile(0.99),
            max_us: hist.max(),
        }
    }
}

/// Summary statistics over all recorded latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub samples: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Maximum of the per-worker mean latencies, microseconds.
    pub max_avg_us: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Maximum observed latency, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us / 1_000.0
    }

    /// 99th percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_us as f64 / 1_000.0
    }
}

/// Throughput and latency of one topology stage.
///
/// The unit of `items` differs per stage: the worker stage counts tuples,
/// the aggregator stage counts partial-window messages (one per closed
/// window per worker per shard), because that is what each stage's threads
/// actually receive and process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Items processed by the stage over the whole run.
    pub items: u64,
    /// Items per second of wall-clock run time.
    pub items_per_sec: f64,
    /// Latency distribution of the stage's items (worker stage: source emit
    /// → worker completion; aggregator stage: worker window close →
    /// aggregator merge).
    pub latency: LatencySummary,
    /// Fault-recovery accounting for the stage. All zero in a fault-free
    /// run — the determinism suite pins that.
    pub recovery: RecoveryMetrics,
}

/// Counters for the exactly-once recovery machinery of one stage.
///
/// In the worker stage, `restores` counts checkpoint restorations after a
/// crash, `replayed_items` counts tuples reprocessed from replayed batches,
/// and `duplicates_dropped` counts messages discarded by sequence-number
/// dedup. In the aggregator stage only `duplicates_dropped` is meaningful:
/// re-sent (worker, window) partials discarded instead of double-merged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryMetrics {
    /// Checkpoint restorations performed after simulated crashes.
    pub restores: u64,
    /// Items reprocessed from replayed messages (already counted once in
    /// `items` — this tracks the recovery overhead, not extra output).
    pub replayed_items: u64,
    /// Messages discarded as duplicates by sequence/worker dedup.
    pub duplicates_dropped: u64,
    /// Replay requests issued upstream (gap detected or post-crash resume).
    pub replay_requests: u64,
    /// Transport-level receive errors survived (a reader thread reporting a
    /// malformed frame or failed read instead of a clean EOF). Zero on a
    /// healthy run; nonzero means a peer died mid-frame and the stage kept
    /// going on the remaining connections.
    pub transport_errors: u64,
}

impl RecoveryMetrics {
    /// True when no recovery machinery fired.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }

    /// Field-wise sum of two counters (for merging per-thread reports).
    pub fn merged(self, other: Self) -> Self {
        Self {
            restores: self.restores + other.restores,
            replayed_items: self.replayed_items + other.replayed_items,
            duplicates_dropped: self.duplicates_dropped + other.duplicates_dropped,
            replay_requests: self.replay_requests + other.replay_requests,
            transport_errors: self.transport_errors + other.transport_errors,
        }
    }
}

impl StageMetrics {
    /// Builds stage metrics from raw counts and the run's elapsed seconds.
    pub fn new(items: u64, elapsed_secs: f64, latency: LatencySummary) -> Self {
        Self {
            items,
            items_per_sec: if elapsed_secs > 0.0 {
                items as f64 / elapsed_secs
            } else {
                0.0
            },
            latency,
            recovery: RecoveryMetrics::default(),
        }
    }

    /// Same as [`Self::new`] with explicit recovery counters.
    pub fn with_recovery(
        items: u64,
        elapsed_secs: f64,
        latency: LatencySummary,
        recovery: RecoveryMetrics,
    ) -> Self {
        Self {
            recovery,
            ..Self::new(items, elapsed_secs, latency)
        }
    }
}

/// Measurements of one phase of a (possibly multi-phase) engine run.
///
/// A plain [`crate::EngineConfig`] run is the one-phase special case: it
/// reports exactly one `PhaseMetrics` covering the whole run. A scenario run
/// reports one entry per [`slb_workloads::ScenarioPhase`], each evaluated
/// over the phase's *active* worker set — the meaningful imbalance when the
/// cluster resizes mid-run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Phase index within the run.
    pub phase: usize,
    /// Active workers during the phase.
    pub workers: usize,
    /// Global index of the phase's first window.
    pub start_window: u64,
    /// Number of windows the phase covers (per source).
    pub windows: u64,
    /// Per-worker processed-tuple counts over the active worker set.
    pub worker_counts: Vec<u64>,
    /// Imbalance of `worker_counts` (the paper's `I` over active workers).
    pub imbalance: f64,
    /// Tuples, throughput over the phase's observed span, and the phase's
    /// end-to-end latency distribution.
    pub stage: StageMetrics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles_of_known_samples() {
        let mut t = LatencyTracker::new();
        for v in 1..=100u64 {
            t.record_us(v);
        }
        assert_eq!(t.len(), 100);
        assert!((t.mean_us() - 50.5).abs() < 1e-9);
        let s = LatencyTracker::summarize(&[t]);
        assert_eq!(s.samples, 100);
        // Nearest-rank on the sorted samples 1..=100: index round(99·p).
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn record_many_matches_repeated_record() {
        let mut a = LatencyTracker::new();
        let mut b = LatencyTracker::new();
        a.record_many_us(7, 5);
        a.record_many_us(3, 0);
        for _ in 0..5 {
            b.record_us(7);
        }
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn summarize_reports_max_of_worker_means() {
        let mut fast = LatencyTracker::new();
        let mut slow = LatencyTracker::new();
        for _ in 0..10 {
            fast.record_us(100);
            slow.record_us(10_000);
        }
        let s = LatencyTracker::summarize(&[fast, slow]);
        assert!((s.max_avg_us - 10_000.0).abs() < 1e-9);
        assert_eq!(s.samples, 20);
    }

    #[test]
    fn empty_trackers_summarize_to_zeros() {
        let s = LatencyTracker::summarize(&[LatencyTracker::new(), LatencyTracker::new()]);
        assert_eq!(s, LatencySummary::default());
        assert_eq!(
            LatencyTracker::summarize_by_worker(&[]),
            LatencySummary::default()
        );
        assert_eq!(
            LatencyTracker::summarize_by_worker(&[vec![LatencyTracker::new()]]),
            LatencySummary::default()
        );
    }

    #[test]
    fn summarize_by_worker_matches_merged_per_worker_summarize() {
        // Phase-major matrix: 3 phases × 2 workers with distinct sample runs.
        let tracker = |values: &[u64]| {
            let mut t = LatencyTracker::new();
            for &v in values {
                t.record_us(v);
            }
            t
        };
        let phase_major = vec![
            vec![tracker(&[10, 20]), tracker(&[1_000])],
            vec![tracker(&[]), tracker(&[2_000, 3_000])],
            vec![tracker(&[30]), tracker(&[4_000])],
        ];
        // Reference: merge each worker's phases by hand, then summarize.
        let merged = vec![
            tracker(&[10, 20, 30]),
            tracker(&[1_000, 2_000, 3_000, 4_000]),
        ];
        assert_eq!(
            LatencyTracker::summarize_by_worker(&phase_major),
            LatencyTracker::summarize(&merged)
        );
    }

    #[test]
    fn single_sample_summary() {
        let mut t = LatencyTracker::new();
        t.record_us(42);
        let s = LatencyTracker::summarize(&[t]);
        assert_eq!(s.p50_us, 42);
        assert_eq!(s.p99_us, 42);
        assert_eq!(s.max_us, 42);
        assert!((s.mean_us - 42.0).abs() < 1e-12);
    }

    #[test]
    fn retention_knob_parses_and_fails_fast() {
        assert_eq!(parse_sample_retention(None), DEFAULT_SAMPLE_RETENTION);
        assert_eq!(parse_sample_retention(Some("exact")), usize::MAX);
        assert_eq!(parse_sample_retention(Some("0")), 0);
        assert_eq!(parse_sample_retention(Some("1024")), 1024);
        let panic = std::panic::catch_unwind(|| parse_sample_retention(Some("plenty")))
            .expect_err("malformed SLB_LATENCY_RETAIN must panic");
        let message = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("SLB_LATENCY_RETAIN") && message.contains("plenty"),
            "panic must name the variable and value: {message}"
        );
    }

    #[test]
    fn overflowed_tracker_summarizes_from_the_histogram() {
        // Simulate retention overflow without touching the process-wide
        // env knob: drop the raw prefix so only the histogram remains.
        let mut t = LatencyTracker::new();
        for v in 1..=100_000u64 {
            t.record_us(v);
        }
        t.samples_us.clear();
        assert!(!t.is_exact());
        assert_eq!(t.len(), 100_000);
        let s = LatencyTracker::summarize(&[t]);
        // Scalars stay exact on the bucketed path...
        assert_eq!(s.samples, 100_000);
        assert!((s.mean_us - 50_000.5).abs() < 1e-6);
        assert_eq!(s.max_us, 100_000);
        // ...while percentiles under-report within the 6.25% bound.
        for (got, exact) in [
            (s.p50_us, 50_001u64),
            (s.p95_us, 95_001),
            (s.p99_us, 99_001),
        ] {
            assert!(got <= exact, "quantile must never over-report");
            assert!(
                (exact as f64) < (got as f64) * (1.0 + 1.0 / 16.0) + 1.0,
                "reported {got} vs exact {exact} exceeds the bound"
            );
        }
    }

    #[test]
    fn one_overflowed_tracker_switches_the_worker_matrix_to_bucketed() {
        let exact_tracker = |values: &[u64]| {
            let mut t = LatencyTracker::new();
            for &v in values {
                t.record_us(v);
            }
            t
        };
        let mut overflowed = exact_tracker(&[500, 600, 700]);
        overflowed.samples_us.truncate(1);
        let phase_major = vec![vec![exact_tracker(&[100, 200]), overflowed]];
        let s = LatencyTracker::summarize_by_worker(&phase_major);
        assert_eq!(s.samples, 5);
        assert!((s.mean_us - 420.0).abs() < 1e-9);
        // Worker means come from exact histogram sums in both modes.
        assert!((s.max_avg_us - 600.0).abs() < 1e-9);
        assert_eq!(s.max_us, 700);
    }

    #[test]
    fn value_runs_compress_exact_samples_and_rebuild_overflowed_histograms() {
        let mut t = LatencyTracker::new();
        t.record_many_us(7, 3);
        t.record_us(9);
        t.record_many_us(7, 2);
        assert_eq!(t.value_runs(), vec![(7, 3), (9, 1), (7, 2)]);

        // Overflowed: runs are bucket floors, which rebuild the bucket
        // counts exactly on the receiving side (floors are bucket fixed
        // points); only the scalar sum/min/max inherit the floor rounding.
        let mut big = LatencyTracker::new();
        for v in (1..=50_000u64).step_by(7) {
            big.record_us(v);
        }
        big.samples_us.clear();
        let mut rebuilt = LatencyTracker::new();
        for (value, count) in big.value_runs() {
            rebuilt.record_many_us(value, count);
        }
        assert_eq!(
            rebuilt.histogram().nonzero_buckets(),
            big.histogram().nonzero_buckets()
        );
        assert_eq!(rebuilt.len(), big.len());
    }

    #[test]
    fn recovery_metrics_merge_field_wise_and_default_is_quiet() {
        assert!(RecoveryMetrics::default().is_quiet());
        let a = RecoveryMetrics {
            restores: 1,
            replayed_items: 10,
            duplicates_dropped: 3,
            replay_requests: 2,
            transport_errors: 1,
        };
        let b = RecoveryMetrics {
            restores: 0,
            replayed_items: 5,
            duplicates_dropped: 1,
            replay_requests: 1,
            transport_errors: 0,
        };
        let m = a.merged(b);
        assert_eq!(
            m,
            RecoveryMetrics {
                restores: 1,
                replayed_items: 15,
                duplicates_dropped: 4,
                replay_requests: 3,
                transport_errors: 1,
            }
        );
        assert!(!m.is_quiet());
    }

    #[test]
    fn unit_conversions() {
        let s = LatencySummary {
            mean_us: 1_500.0,
            p99_us: 2_000,
            ..Default::default()
        };
        assert!((s.mean_ms() - 1.5).abs() < 1e-12);
        assert!((s.p99_ms() - 2.0).abs() < 1e-12);
    }
}
