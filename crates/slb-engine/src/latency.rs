//! Per-tuple latency recording and summarization.
//!
//! The paper reports, per grouping scheme, the maximum of the per-worker
//! average latencies together with the 50th, 95th and 99th percentiles
//! across all workers (Figure 14). Workers record each tuple's end-to-end
//! latency (emit time at the source to completion time at the worker); the
//! summaries are computed after the run.

use serde::{Deserialize, Serialize};

/// Collects individual latency samples (in microseconds) for one worker.
#[derive(Debug, Clone, Default)]
pub struct LatencyTracker {
    samples_us: Vec<u64>,
}

impl LatencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self {
            samples_us: Vec::new(),
        }
    }

    /// Creates a tracker pre-allocating room for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples_us: Vec::with_capacity(capacity),
        }
    }

    /// Records one latency sample in microseconds.
    #[inline]
    pub fn record_us(&mut self, micros: u64) {
        self.samples_us.push(micros);
    }

    /// Records the same latency for `count` tuples at once — used by the
    /// batched engine, where every tuple of a drained batch shares one
    /// timestamped emit instant.
    #[inline]
    pub fn record_many_us(&mut self, micros: u64, count: u64) {
        self.samples_us
            .resize(self.samples_us.len() + count as usize, micros);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64
    }

    /// The raw samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples_us
    }

    /// Merges the samples of several trackers and produces a summary, also
    /// reporting the maximum per-tracker mean (the paper's "max avg").
    pub fn summarize(trackers: &[LatencyTracker]) -> LatencySummary {
        let mut all: Vec<u64> = trackers
            .iter()
            .flat_map(|t| t.samples_us.iter().copied())
            .collect();
        let max_avg_us = trackers
            .iter()
            .filter(|t| !t.is_empty())
            .map(LatencyTracker::mean_us)
            .fold(0.0f64, f64::max);
        if all.is_empty() {
            return LatencySummary::default();
        }
        all.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((all.len() as f64 - 1.0) * p).round() as usize;
            all[idx]
        };
        LatencySummary {
            samples: all.len() as u64,
            mean_us: all.iter().sum::<u64>() as f64 / all.len() as f64,
            max_avg_us,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: *all.last().expect("non-empty"),
        }
    }
}

/// Summary statistics over all recorded latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub samples: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Maximum of the per-worker mean latencies, microseconds.
    pub max_avg_us: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Maximum observed latency, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us / 1_000.0
    }

    /// 99th percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.p99_us as f64 / 1_000.0
    }
}

/// Throughput and latency of one topology stage.
///
/// The unit of `items` differs per stage: the worker stage counts tuples,
/// the aggregator stage counts partial-window messages (one per closed
/// window per worker per shard), because that is what each stage's threads
/// actually receive and process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Items processed by the stage over the whole run.
    pub items: u64,
    /// Items per second of wall-clock run time.
    pub items_per_sec: f64,
    /// Latency distribution of the stage's items (worker stage: source emit
    /// → worker completion; aggregator stage: worker window close →
    /// aggregator merge).
    pub latency: LatencySummary,
}

impl StageMetrics {
    /// Builds stage metrics from raw counts and the run's elapsed seconds.
    pub fn new(items: u64, elapsed_secs: f64, latency: LatencySummary) -> Self {
        Self {
            items,
            items_per_sec: if elapsed_secs > 0.0 {
                items as f64 / elapsed_secs
            } else {
                0.0
            },
            latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_percentiles_of_known_samples() {
        let mut t = LatencyTracker::new();
        for v in 1..=100u64 {
            t.record_us(v);
        }
        assert_eq!(t.len(), 100);
        assert!((t.mean_us() - 50.5).abs() < 1e-9);
        let s = LatencyTracker::summarize(&[t]);
        assert_eq!(s.samples, 100);
        // Nearest-rank on the sorted samples 1..=100: index round(99·p).
        assert_eq!(s.p50_us, 51);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn record_many_matches_repeated_record() {
        let mut a = LatencyTracker::new();
        let mut b = LatencyTracker::new();
        a.record_many_us(7, 5);
        a.record_many_us(3, 0);
        for _ in 0..5 {
            b.record_us(7);
        }
        assert_eq!(a.samples(), b.samples());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn summarize_reports_max_of_worker_means() {
        let mut fast = LatencyTracker::new();
        let mut slow = LatencyTracker::new();
        for _ in 0..10 {
            fast.record_us(100);
            slow.record_us(10_000);
        }
        let s = LatencyTracker::summarize(&[fast, slow]);
        assert!((s.max_avg_us - 10_000.0).abs() < 1e-9);
        assert_eq!(s.samples, 20);
    }

    #[test]
    fn empty_trackers_summarize_to_zeros() {
        let s = LatencyTracker::summarize(&[LatencyTracker::new(), LatencyTracker::new()]);
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn single_sample_summary() {
        let mut t = LatencyTracker::new();
        t.record_us(42);
        let s = LatencyTracker::summarize(&[t]);
        assert_eq!(s.p50_us, 42);
        assert_eq!(s.p99_us, 42);
        assert_eq!(s.max_us, 42);
        assert!((s.mean_us - 42.0).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions() {
        let s = LatencySummary {
            mean_us: 1_500.0,
            p99_us: 2_000,
            ..Default::default()
        };
        assert!((s.mean_ms() - 1.5).abs() < 1e-12);
        assert!((s.p99_ms() - 2.0).abs() < 1e-12);
    }
}
