//! Determinism suite: thread interleaving, transport batching, and
//! aggregator sharding never leak into the engine's aggregates.
//!
//! The engine is heavily threaded (sources, workers, aggregator shards all
//! race on bounded channels), so the *timing* numbers of two identical runs
//! differ — but every aggregate that feeds the paper's figures must not:
//! per-worker tuple counts, per-worker state footprints, imbalance, window
//! counts, and the merged per-window aggregates are pure functions of the
//! `EngineConfig`. These tests re-run identical and transport-varied
//! configurations and demand exact equality on that deterministic subset.

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{EngineConfig, EngineResult, Topology};

/// The deterministic projection of an [`EngineResult`]: everything except
/// wall-clock-derived measurements (elapsed, throughput, latency).
fn deterministic_view(r: &EngineResult) -> impl PartialEq + std::fmt::Debug {
    (
        r.scheme.clone(),
        r.processed,
        r.worker_counts.clone(),
        r.worker_state_keys.clone(),
        r.imbalance.to_bits(),
        r.windows,
        r.window_size,
        r.aggregators,
        r.worker_stage.items,
        r.aggregator_stage.items,
    )
}

fn config(kind: PartitionerKind, skew: f64) -> EngineConfig {
    EngineConfig::smoke(kind, skew)
        .with_messages(16_000)
        .with_service_time_us(0)
        .with_window_size(640)
        .with_seed(1337)
}

#[test]
fn identical_configs_yield_identical_aggregates() {
    for kind in PartitionerKind::ALL {
        let cfg = config(kind, 1.6);
        let first = Topology::new(cfg.clone()).run_windowed(CountAggregate);
        let second = Topology::new(cfg).run_windowed(CountAggregate);
        assert_eq!(
            deterministic_view(&first.result),
            deterministic_view(&second.result),
            "{kind:?}: rerun changed deterministic aggregates"
        );
        assert_eq!(
            first.windows, second.windows,
            "{kind:?}: rerun changed merged windowed output"
        );
    }
}

#[test]
fn batch_size_one_and_256_yield_identical_aggregates() {
    for kind in [
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::RoundRobin,
    ] {
        let base = config(kind, 2.0);
        let scalar = Topology::new(base.clone().with_batch_size(1)).run_windowed(CountAggregate);
        let batched = Topology::new(base.with_batch_size(256)).run_windowed(CountAggregate);
        assert_eq!(
            deterministic_view(&scalar.result),
            deterministic_view(&batched.result),
            "{kind:?}: transport batch size leaked into aggregates"
        );
        assert_eq!(
            scalar.windows, batched.windows,
            "{kind:?}: transport batch size leaked into windowed output"
        );
    }
}

#[test]
fn aggregator_shard_count_never_changes_the_merged_output() {
    let base = config(PartitionerKind::Pkg, 1.4);
    let reference = Topology::new(base.clone().with_aggregators(1)).run_windowed(CountAggregate);
    for aggregators in [2usize, 3, 7] {
        let sharded =
            Topology::new(base.clone().with_aggregators(aggregators)).run_windowed(CountAggregate);
        assert_eq!(
            reference.windows, sharded.windows,
            "{aggregators} shards changed the merged windows"
        );
        // The shard count does change how many partial messages flow…
        assert_eq!(
            sharded.result.aggregator_stage.items,
            sharded.result.windows * (base.workers * aggregators) as u64
        );
        // …but never the routing-side aggregates.
        assert_eq!(reference.result.worker_counts, sharded.result.worker_counts);
    }
}

#[test]
fn seeds_do_change_the_workload() {
    // Guard against a vacuous suite: determinism must come from fixed seeds,
    // not from the engine ignoring them.
    let a = Topology::new(config(PartitionerKind::Pkg, 1.4).with_seed(1)).run();
    let b = Topology::new(config(PartitionerKind::Pkg, 1.4).with_seed(2)).run();
    assert_ne!(
        a.worker_counts, b.worker_counts,
        "different seeds should produce different routed workloads"
    );
}
