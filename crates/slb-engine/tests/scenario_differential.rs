//! Scenario differential suite: the key-splitting soundness invariant under
//! drift, heterogeneity, bursts, and mid-run scale-out.
//!
//! PR 3's differential suite certifies the static single-phase case; this
//! suite extends the same exactness bar to multi-phase scenario runs. For
//! every grouping scheme and seed, the threaded engine executing the
//! canonical stress scenario (drifting skew, a 2×-slow worker, a burst
//! phase, scale-out then scale-in) must produce merged per-window per-key
//! counts **bit-identical** to the single-threaded exact reference
//! ([`exact_scenario_windowed_counts`]) — and its per-phase routed counts
//! must equal the analytic simulator's replay of the same spec exactly,
//! which pins that both executors really run *one* scenario semantics.
//!
//! Seeds: the suite runs a built-in seed pair by default; setting
//! `SLB_TEST_SEED` (a single u64) replaces the pair with that seed, which is
//! how `ci.sh` sweeps its seed matrix without re-paying for the defaults.

use std::collections::HashMap;

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{exact_scenario_windowed_counts, ScenarioConfig, WindowId};
use slb_simulator::simulate_scenario;
use slb_workloads::{KeyId, Scenario};

/// Seeds to exercise: `SLB_TEST_SEED` alone when set, the built-in pair
/// otherwise (disjoint from ci.sh's {1, 42, 1337} matrix).
fn seeds() -> Vec<u64> {
    match std::env::var("SLB_TEST_SEED") {
        Ok(value) => {
            let seed: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("SLB_TEST_SEED must be a u64, got {value:?}"));
            vec![seed]
        }
        Err(_) => vec![7, 23],
    }
}

/// The canonical stress scenario at test size: 3 sources, 256-tuple
/// windows, 4→8→4 workers (see [`Scenario::stress`]), ~10.8k tuples.
fn stress(seed: u64) -> Scenario {
    Scenario::stress(3, 256, 4, seed)
}

fn assert_scenario_merged_equals_reference(kind: PartitionerKind, seed: u64) {
    let scenario = stress(seed);
    let reference = exact_scenario_windowed_counts(&scenario);
    let run = ScenarioConfig::new(kind, scenario.clone()).run_windowed(CountAggregate);
    let merged: Vec<(WindowId, HashMap<KeyId, u64>)> = run.windows.into_iter().collect();
    let expected: Vec<(WindowId, HashMap<KeyId, u64>)> = reference.into_iter().collect();
    assert_eq!(
        merged.len(),
        expected.len(),
        "{} seed={seed}: window count diverged",
        kind.symbol()
    );
    for ((window, counts), (ref_window, ref_counts)) in merged.iter().zip(&expected) {
        assert_eq!(window, ref_window);
        assert_eq!(
            counts,
            ref_counts,
            "{} seed={seed} window {window}: merged scenario counts diverged from the exact \
             reference",
            kind.symbol()
        );
    }
    // Cross-executor agreement: the engine's per-phase routed counts equal
    // the simulator's replay of the same spec, tuple for tuple.
    let sim = simulate_scenario(kind, &scenario);
    assert_eq!(run.result.phases.len(), sim.phases.len());
    for (engine_phase, sim_phase) in run.result.phases.iter().zip(&sim.phases) {
        assert_eq!(
            engine_phase.worker_counts,
            sim_phase.worker_counts,
            "{} seed={seed} phase {}: engine and simulator routed counts diverged",
            kind.symbol(),
            engine_phase.phase
        );
        assert_eq!(
            engine_phase.imbalance.to_bits(),
            sim_phase.imbalance.to_bits(),
            "{} seed={seed} phase {}: imbalance diverged",
            kind.symbol(),
            engine_phase.phase
        );
    }
}

fn run_scheme(kind: PartitionerKind) {
    for seed in seeds() {
        assert_scenario_merged_equals_reference(kind, seed);
    }
}

#[test]
fn key_grouping_scenario_counts_match_exact_reference() {
    run_scheme(PartitionerKind::KeyGrouping);
}

#[test]
fn shuffle_grouping_scenario_counts_match_exact_reference() {
    run_scheme(PartitionerKind::ShuffleGrouping);
}

#[test]
fn pkg_scenario_counts_match_exact_reference() {
    run_scheme(PartitionerKind::Pkg);
}

#[test]
fn d_choices_scenario_counts_match_exact_reference() {
    run_scheme(PartitionerKind::DChoices);
}

#[test]
fn w_choices_scenario_counts_match_exact_reference() {
    run_scheme(PartitionerKind::WChoices);
}

#[test]
fn round_robin_scenario_counts_match_exact_reference() {
    run_scheme(PartitionerKind::RoundRobin);
}

/// The scenario invariant is insensitive to every transport/parallelism
/// knob, exactly like the single-phase one.
#[test]
fn scenario_invariant_holds_across_transport_and_sharding_knobs() {
    let seed = seeds()[seeds().len() - 1];
    let scenario = stress(seed);
    let reference = exact_scenario_windowed_counts(&scenario);
    for batch_size in [1usize, 3, 256] {
        let run = ScenarioConfig::new(PartitionerKind::Pkg, scenario.clone())
            .with_batch_size(batch_size)
            .run_windowed(CountAggregate);
        assert_eq!(run.windows, reference, "batch_size={batch_size}");
    }
    for aggregators in [1usize, 3, 5] {
        let run = ScenarioConfig::new(PartitionerKind::Pkg, scenario.clone())
            .with_aggregators(aggregators)
            .run_windowed(CountAggregate);
        assert_eq!(run.windows, reference, "aggregators={aggregators}");
    }
    // A non-zero service time (heterogeneity multipliers then actually slow
    // workers down) must not change the merged output either.
    let run = ScenarioConfig::new(PartitionerKind::Pkg, scenario)
        .with_service_time_us(5)
        .run_windowed(CountAggregate);
    assert_eq!(run.windows, reference, "service_time_us=5");
}

/// Per-phase metrics are emitted for all six schemes on the stress scenario
/// (the acceptance criterion of the scenario engine).
#[test]
fn all_six_schemes_emit_per_phase_imbalance() {
    let scenario = stress(seeds()[0]);
    for kind in PartitionerKind::ALL {
        let result = ScenarioConfig::new(kind, scenario.clone()).run();
        assert_eq!(result.phases.len(), scenario.phases.len(), "{kind:?}");
        for phase in &result.phases {
            assert!(
                phase.imbalance.is_finite(),
                "{kind:?} phase {}",
                phase.phase
            );
            assert_eq!(
                phase.stage.items,
                scenario.phase_tuples_per_source(phase.phase) * scenario.sources as u64,
                "{kind:?} phase {}",
                phase.phase
            );
        }
    }
}
