//! Property tests for scenario-run invariants on the threaded engine.
//!
//! Random small scenarios (varying phase counts, worker counts, drift, and
//! schemes) are executed end to end, asserting the structural invariants the
//! scenario engine guarantees:
//!
//! * phase transitions never split a window — every phase's windows land in
//!   `[start_window, start_window + windows)` and every window is full;
//! * worker-count changes preserve total tuple counts — nothing is lost or
//!   duplicated across a rescale boundary;
//! * per-phase metrics sum to run totals — counts, latency samples, and
//!   per-worker loads are partitioned exactly by phase.

use proptest::prelude::*;

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::ScenarioConfig;
use slb_workloads::{Scenario, ScenarioPhase};

/// Expands packed randomness into a small but varied scenario (1–3 phases,
/// 1–2 windows each, worker counts 1–6, optional drift).
fn random_scenario(
    sources: usize,
    window_size: u64,
    seed: u64,
    phase_count: usize,
    mix: u64,
) -> Scenario {
    let mut state = mix;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut scenario = Scenario::new("prop", sources, window_size, seed);
    for _ in 0..phase_count {
        let windows = 1 + next() % 2;
        let keys = 2 + (next() % 300) as usize;
        let skew = (next() % 2_200) as f64 / 1_000.0;
        let workers = 1 + (next() % 6) as usize;
        // drift_epochs must divide the phase's tuples; walk the random
        // candidate down to the nearest divisor (worst case 1).
        let tuples = windows * window_size;
        let mut drift_epochs = 1 + next() % 3;
        while tuples % drift_epochs != 0 {
            drift_epochs -= 1;
        }
        scenario = scenario.phase(
            ScenarioPhase::new(windows, keys, skew, workers).with_drift_epochs(drift_epochs),
        );
    }
    scenario
}

fn kind_of(index: u64) -> PartitionerKind {
    PartitionerKind::ALL[(index % PartitionerKind::ALL.len() as u64) as usize]
}

proptest! {
    // Each case spawns a full threaded topology, so keep the local count
    // modest; ci.sh raises it via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(16))]

    /// Worker-count changes preserve total tuple counts, per-phase metrics
    /// sum to run totals, and no phase routes outside its active worker set.
    #[test]
    fn scenario_runs_preserve_counts_and_partition_metrics(
        sources in 1usize..4,
        window_size in 16u64..200,
        seed in any::<u64>(),
        phase_count in 1usize..4,
        mix in any::<u64>(),
        kind_index in any::<u64>(),
    ) {
        let scenario = random_scenario(sources, window_size, seed, phase_count, mix);
        let kind = kind_of(kind_index);
        let run = ScenarioConfig::new(kind, scenario.clone()).run_windowed(CountAggregate);
        let result = &run.result;

        // Total preservation across rescale boundaries.
        prop_assert_eq!(result.processed, scenario.total_tuples());
        prop_assert_eq!(result.latency.samples, result.processed);
        prop_assert_eq!(result.windows, scenario.total_windows());

        // Per-phase metrics partition the run totals exactly.
        prop_assert_eq!(result.phases.len(), scenario.phases.len());
        let phase_items: u64 = result.phases.iter().map(|p| p.stage.items).sum();
        prop_assert_eq!(phase_items, result.processed);
        let phase_samples: u64 = result.phases.iter().map(|p| p.stage.latency.samples).sum();
        prop_assert_eq!(phase_samples, result.latency.samples);
        let mut per_worker = vec![0u64; scenario.max_workers()];
        for (p, phase) in result.phases.iter().enumerate() {
            prop_assert_eq!(phase.workers, scenario.phases[p].workers);
            prop_assert_eq!(
                phase.stage.items,
                scenario.phase_tuples_per_source(p) * scenario.sources as u64
            );
            // Nothing routed outside the active set (counts vector is the
            // active prefix and must carry the whole phase).
            prop_assert_eq!(phase.worker_counts.len(), phase.workers);
            prop_assert_eq!(phase.worker_counts.iter().sum::<u64>(), phase.stage.items);
            for (w, &count) in phase.worker_counts.iter().enumerate() {
                per_worker[w] += count;
            }
        }
        prop_assert_eq!(per_worker, result.worker_counts.clone());

        // Phase transitions never split a window: the merged output has
        // exactly the expected windows, every one full, and each phase's
        // window range matches the spec.
        let per_window = window_size * sources as u64;
        for (&window, counts) in &run.windows {
            let tuples: u64 = counts.values().sum();
            prop_assert_eq!(tuples, per_window, "window {} is not full", window);
        }
        for (p, phase) in result.phases.iter().enumerate() {
            prop_assert_eq!(phase.start_window, scenario.phase_start_window(p));
            prop_assert_eq!(phase.windows, scenario.phases[p].windows);
            for w in phase.start_window..phase.start_window + phase.windows {
                prop_assert!(run.windows.contains_key(&w), "window {} missing", w);
                prop_assert_eq!(scenario.phase_of_window(w), p);
            }
        }
    }
}
