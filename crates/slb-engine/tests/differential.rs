//! Differential correctness suite: the key-splitting soundness invariant.
//!
//! The paper's central claim is only sound end to end if the downstream
//! aggregation stage exactly undoes the scattering that key splitting
//! introduces: whatever the grouping scheme (KG, SG, PKG, D-C, W-C, RR),
//! however skewed the workload, and however the run is batched, threaded and
//! sharded, the merged per-window per-key counts must be **bit-identical**
//! to what a single worker counting the whole stream would produce.
//!
//! This suite runs the full threaded engine for every scheme × skew × seed
//! combination and compares the merged windowed output against the
//! single-threaded exact reference ([`exact_windowed_counts`]). Any
//! divergence — a lost tuple, a double count, a window boundary that moved
//! with thread interleaving — fails the equality, not a statistical bound.
//!
//! Seeds: the suite runs a built-in seed pair by default; setting
//! `SLB_TEST_SEED` (a single u64) replaces the pair with that seed, which is
//! how `ci.sh` sweeps its seed matrix without re-paying for the defaults.

use std::collections::HashMap;

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{exact_windowed_counts, EngineConfig, Topology, WindowId};
use slb_workloads::KeyId;

/// Seeds to exercise: `SLB_TEST_SEED` alone when set (so the CI matrix pays
/// for exactly one new seed per sweep iteration — the built-in pair already
/// ran in the plain workspace invocation), the built-in pair otherwise.
/// The pair is deliberately disjoint from ci.sh's {1, 42, 1337} matrix.
fn seeds() -> Vec<u64> {
    match std::env::var("SLB_TEST_SEED") {
        Ok(value) => {
            let seed: u64 = value
                .parse()
                .unwrap_or_else(|_| panic!("SLB_TEST_SEED must be a u64, got {value:?}"));
            vec![seed]
        }
        Err(_) => vec![7, 23],
    }
}

/// A small-but-threaded configuration: multiple sources and workers, zero
/// service time (the differential check is about counting, not queueing),
/// and a window size that produces several windows including a partial one.
fn differential_config(kind: PartitionerKind, skew: f64, seed: u64) -> EngineConfig {
    EngineConfig::smoke(kind, skew)
        .with_seed(seed)
        .with_messages(24_000)
        .with_service_time_us(0)
        .with_window_size(512)
}

fn assert_merged_equals_reference(cfg: &EngineConfig) {
    let reference = exact_windowed_counts(cfg);
    let run = Topology::new(cfg.clone()).run_windowed(CountAggregate);
    let merged: Vec<(WindowId, HashMap<KeyId, u64>)> = run.windows.into_iter().collect();
    let expected: Vec<(WindowId, HashMap<KeyId, u64>)> = reference.into_iter().collect();
    assert_eq!(
        merged.len(),
        expected.len(),
        "{} z={} seed={}: window count diverged",
        cfg.kind.symbol(),
        cfg.skew,
        cfg.seed
    );
    for ((window, counts), (ref_window, ref_counts)) in merged.iter().zip(&expected) {
        assert_eq!(window, ref_window);
        assert_eq!(
            counts,
            ref_counts,
            "{} z={} seed={} window {}: merged counts diverged from the exact reference",
            cfg.kind.symbol(),
            cfg.skew,
            cfg.seed,
            window
        );
    }
}

/// The full matrix: every scheme × skew × seed. One test per scheme so
/// failures name the scheme and the matrix runs on all test threads.
fn run_scheme(kind: PartitionerKind) {
    for skew in [0.0, 1.4, 2.0] {
        for seed in seeds() {
            assert_merged_equals_reference(&differential_config(kind, skew, seed));
        }
    }
}

#[test]
fn key_grouping_merged_counts_match_exact_reference() {
    run_scheme(PartitionerKind::KeyGrouping);
}

#[test]
fn shuffle_grouping_merged_counts_match_exact_reference() {
    run_scheme(PartitionerKind::ShuffleGrouping);
}

#[test]
fn pkg_merged_counts_match_exact_reference() {
    run_scheme(PartitionerKind::Pkg);
}

#[test]
fn d_choices_merged_counts_match_exact_reference() {
    run_scheme(PartitionerKind::DChoices);
}

#[test]
fn w_choices_merged_counts_match_exact_reference() {
    run_scheme(PartitionerKind::WChoices);
}

#[test]
fn round_robin_merged_counts_match_exact_reference() {
    run_scheme(PartitionerKind::RoundRobin);
}

/// The invariant is insensitive to every transport/parallelism knob: batch
/// size (including tuple-at-a-time), aggregator shard count, worker count,
/// and window sizes that do not divide the stream evenly.
#[test]
fn invariant_holds_across_transport_and_sharding_knobs() {
    let seed = seeds()[seeds().len() - 1];
    let base = differential_config(PartitionerKind::Pkg, 1.4, seed);
    for batch_size in [1usize, 3, 256] {
        assert_merged_equals_reference(&base.clone().with_batch_size(batch_size));
    }
    for aggregators in [1usize, 3, 5] {
        assert_merged_equals_reference(&base.clone().with_aggregators(aggregators));
    }
    // Extreme window sizes (every tuple its own window; one giant window)
    // punctuate far more often, so run them on a shorter stream.
    for window_size in [1u64, 7, 999, 100_000] {
        assert_merged_equals_reference(
            &base
                .clone()
                .with_messages(6_000)
                .with_window_size(window_size),
        );
    }
    let mut wide = base.clone();
    wide.workers = 11;
    wide.sources = 3;
    assert_merged_equals_reference(&wide);
}
