//! Tail-latency regression test for trickle-rate arrivals.
//!
//! The per-batch latency stamp is taken when the *first* tuple is buffered,
//! so before the burst-boundary flush landed, a partial batch at a low
//! arrival rate sat through every inter-burst pause until it filled (or the
//! window closed) — and every tuple in it inherited that full wait. With
//! bursts of 16 tuples and a 10 ms pause against the default 256-tuple
//! batch, p99 used to sit in the hundreds of milliseconds; flushing partial
//! batches at each burst boundary keeps it near the actual queueing delay.
//!
//! The flush point is a deterministic position in the tuple sequence (not a
//! wall-clock timer), so the run's routing, counts, and sequence numbers
//! stay bit-identical to a steady run of the same spec — asserted here via
//! the exact reference.

use slb_core::{CountAggregate, PartitionerKind};
use slb_engine::{exact_scenario_windowed_counts, ScenarioConfig};
use slb_workloads::{Arrival, Scenario, ScenarioPhase};

#[test]
fn trickle_rate_p99_stays_near_queueing_delay() {
    // 2 sources × 512 tuples in bursts of 16 with a 10 ms pause: a batch
    // would need ~16 bursts (~160 ms of pauses) to fill without the flush.
    let scenario = Scenario::single_phase(
        "trickle",
        2,
        256,
        41,
        ScenarioPhase::new(2, 100, 0.0, 2).with_arrival(Arrival::Bursty {
            burst_tuples: 16,
            pause_us: 10_000,
        }),
    );
    let run = ScenarioConfig::new(PartitionerKind::ShuffleGrouping, scenario.clone())
        .run_windowed(CountAggregate);
    assert_eq!(run.result.processed, 1024);
    assert!(
        run.result.latency.p99_us < 20_000,
        "trickle-rate p99 blew past the queueing delay — partial batches \
         are sitting through inter-burst pauses again (p99={}us, p50={}us)",
        run.result.latency.p99_us,
        run.result.latency.p50_us
    );
    // The flush must not change what is computed, only when it ships.
    assert_eq!(
        run.windows,
        exact_scenario_windowed_counts(&scenario),
        "burst-boundary flushing changed merged window contents"
    );
}
