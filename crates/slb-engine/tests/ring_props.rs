//! Property suite for the SPSC transport's rings and lane protocol.
//!
//! The properties drive the *public* transport surface — the endpoints
//! [`Spsc`] hands out — with randomized capacities, message counts, and
//! interleavings, and pin the contract every backend owes the engine:
//!
//! 1. **FIFO per sender through wrap-around** — with ring capacities far
//!    smaller than the message count, every index wraps the buffer many
//!    times and the blocking send exercises the full boundary; each
//!    sender's sequence must still arrive intact and in order.
//! 2. **Full/empty boundary** — a capacity-1 ring alternates strictly
//!    between full and empty; nothing may be lost, duplicated, or
//!    reordered at either edge.
//! 3. **Punctuation interleaving** — batches and `CloseWindow` markers
//!    share the ring as in-band frames; per source, every batch of window
//!    `w` must be delivered before that source's close of `w`, and closes
//!    must arrive in window order.
//! 4. **Recycling round trip** — buffers handed back by the receiver come
//!    out of `take_recycled` with contents intact, and the try-only
//!    recycling path never blocks or manufactures buffers.

use std::thread;
use std::time::Instant;

use proptest::prelude::*;

use slb_engine::{
    RecvError, SourceMessage, Spsc, Transport, TupleBatch, TupleReceiver, TupleSender,
};

/// Drains the channel to EOF, returning every message in arrival order.
fn drain_all<R: TupleReceiver>(rx: &R) -> Vec<SourceMessage> {
    let mut out = Vec::new();
    loop {
        match rx.recv_batch(&mut out) {
            Ok(_) => {}
            Err(RecvError::Closed) => return out,
            Err(e) => panic!("unexpected receive error: {e}"),
        }
    }
}

fn batch(source: usize, seq: u64, window: u64, keys: Vec<u64>) -> SourceMessage {
    SourceMessage::Batch(TupleBatch {
        keys,
        window,
        source,
        seq,
        emitted_at: Instant::now(),
    })
}

proptest! {
    // 64 cases locally; ci.sh raises this via PROPTEST_CASES.
    #![proptest_config(ProptestConfig::with_cases_env(64))]

    #[test]
    fn fifo_per_sender_survives_wraparound(
        capacity in 1usize..5,
        counts in proptest::collection::vec(1u64..120, 1..4),
    ) {
        // `counts.len()` sender threads, each a clone with a private lane,
        // all funneling into one receiver through rings that wrap dozens
        // of times (capacity < 5, up to 120 messages per lane).
        let (mut txs, mut rxs) = Transport::<u64>::tuple_channels(&Spsc, 1, capacity);
        let rx = rxs.remove(0);
        let tx = txs.remove(0);
        let producers: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(source, &n)| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for seq in 0..n {
                        tx.send(batch(source, seq, 0, vec![seq])).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let received = drain_all(&rx);
        for p in producers {
            p.join().unwrap();
        }
        prop_assert_eq!(received.len() as u64, counts.iter().sum::<u64>());
        // Per sender: the exact sequence, in order, payloads intact.
        for (source, &n) in counts.iter().enumerate() {
            let mut mine = Vec::new();
            for message in received.iter().filter(|m| m.source_seq().0 == source) {
                let SourceMessage::Batch(b) = message else {
                    panic!("only batches were sent");
                };
                prop_assert_eq!(&b.keys, &vec![b.seq], "payload corrupted in transit");
                mine.push(b.seq);
            }
            prop_assert_eq!(mine, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn capacity_one_ring_crosses_full_and_empty_every_message(
        n in 1u64..200,
    ) {
        // With one slot the ring is full after every push and empty after
        // every pop: 2n boundary crossings, zero slack to hide an
        // off-by-one in the index arithmetic.
        let (mut txs, mut rxs) = Transport::<u64>::tuple_channels(&Spsc, 1, 1);
        let rx = rxs.remove(0);
        let tx = txs.remove(0);
        let producer = thread::spawn(move || {
            for seq in 0..n {
                tx.send(batch(0, seq, 0, vec![seq * 3])).unwrap();
            }
        });
        let received = drain_all(&rx);
        producer.join().unwrap();
        let seqs: Vec<u64> = received.iter().map(|m| m.source_seq().1).collect();
        prop_assert_eq!(seqs, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn punctuation_orders_against_batches_per_source(
        capacity in 1usize..6,
        windows in 1u64..6,
        batches_per_window in proptest::collection::vec(0u64..5, 1..4),
    ) {
        // Each source emits `batches_per_window[source]` batches then a
        // close, per window. The receiver must observe, per source, every
        // window-w batch before close(w) and the closes in window order —
        // exactly what the worker's finalization logic relies on.
        let sources = batches_per_window.len();
        let (mut txs, mut rxs) = Transport::<u64>::tuple_channels(&Spsc, 1, capacity);
        let rx = rxs.remove(0);
        let tx = txs.remove(0);
        let producers: Vec<_> = batches_per_window
            .iter()
            .enumerate()
            .map(|(source, &per_window)| {
                let tx = tx.clone();
                thread::spawn(move || {
                    let mut seq = 0u64;
                    for window in 0..windows {
                        for _ in 0..per_window {
                            tx.send(batch(source, seq, window, vec![window])).unwrap();
                            seq += 1;
                        }
                        tx.send(SourceMessage::CloseWindow { window, source, seq })
                            .unwrap();
                        seq += 1;
                    }
                })
            })
            .collect();
        drop(tx);
        let received = drain_all(&rx);
        for p in producers {
            p.join().unwrap();
        }
        for (source, &per_window) in batches_per_window.iter().enumerate().take(sources) {
            let mut closed_below = 0u64; // windows 0..closed_below are closed
            let mut batches_seen = 0u64;
            for message in received.iter().filter(|m| m.source_seq().0 == source) {
                match message {
                    SourceMessage::Batch(b) => {
                        prop_assert!(
                            b.window >= closed_below,
                            "source {} batch for window {} after its close",
                            source,
                            b.window
                        );
                        batches_seen += 1;
                    }
                    SourceMessage::CloseWindow { window, .. } => {
                        prop_assert_eq!(*window, closed_below, "closes out of order");
                        closed_below = window + 1;
                    }
                }
            }
            prop_assert_eq!(closed_below, windows);
            prop_assert_eq!(batches_seen, per_window * windows);
        }
    }

    #[test]
    fn recycled_buffers_round_trip_intact(
        capacity in 1usize..6,
        buffers in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..8),
            0..12,
        ),
    ) {
        let (mut txs, mut rxs) = Transport::<u64>::tuple_channels(&Spsc, 1, capacity);
        let rx = rxs.remove(0);
        let tx = txs.remove(0);
        // One send claims the lane (and with it the recycling ring).
        tx.send(batch(0, 0, 0, vec![7])).unwrap();
        let mut out = Vec::new();
        rx.recv_batch(&mut out).unwrap();
        for keys in &buffers {
            rx.recycle(keys.clone());
        }
        // The return ring holds `capacity` buffers; overflow is dropped,
        // never blocked on. What does come back is FIFO and bit-intact.
        let mut returned = Vec::new();
        while let Some(keys) = tx.take_recycled() {
            returned.push(keys);
        }
        prop_assert_eq!(returned.len(), buffers.len().min(capacity));
        for (got, want) in returned.iter().zip(&buffers) {
            prop_assert_eq!(got, want);
        }
        prop_assert!(tx.take_recycled().is_none(), "drained ring yields None");
    }
}
