//! Smoke tests: the examples named in the README must build and run to
//! completion from a fresh checkout.
//!
//! Each test shells out to `cargo run --example ...` (the build lock is free
//! while the test binaries execute, so nesting cargo here is safe). The
//! longer-running examples are exercised by `ci.sh` instead of here to keep
//! `cargo test` fast.

use std::process::Command;

fn run_example(name: &str) {
    let output = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", name])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\nstdout:\n{}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example {name} printed nothing; expected a result table"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn imbalance_study_runs() {
    run_example("imbalance_study");
}
