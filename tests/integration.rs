//! Cross-crate integration tests: exercise the facade crate end-to-end and
//! assert the paper's qualitative results at small (CI-friendly) scale.

use slb::core::{
    build_partitioner, find_optimal_choices, imbalance, ChoicesDecision, PartitionConfig,
    PartitionerKind,
};
use slb::engine::{EngineConfig, Topology};
use slb::simulator::experiments::{
    d_fraction_vs_skew, head_cardinality_vs_skew, memory_overhead_vs_skew,
};
use slb::simulator::{SimulationConfig, Simulator};
use slb::sketch::{FrequencyEstimator, SpaceSaving};
use slb::workloads::datasets::{Dataset, Scale, SyntheticDataset};
use slb::workloads::zipf::{ZipfDistribution, ZipfGenerator};

/// The motivating claim (Figure 1): at 50+ workers on a Wikipedia-like
/// workload, PKG's imbalance is orders of magnitude above W-Choices' and
/// clearly above D-Choices'.
#[test]
fn two_choices_are_not_enough_at_scale() {
    let dataset = SyntheticDataset::wikipedia_like(Scale::Smoke, 5);
    let run = |kind: PartitionerKind| {
        let mut stream = dataset.stream();
        Simulator::run(SimulationConfig::new(kind, 50), stream.as_mut()).imbalance
    };
    let pkg = run(PartitionerKind::Pkg);
    let dc = run(PartitionerKind::DChoices);
    let wc = run(PartitionerKind::WChoices);
    assert!(pkg > 5.0 * wc, "PKG {pkg} should be far above W-C {wc}");
    assert!(dc < pkg, "D-C {dc} should beat PKG {pkg}");
}

/// At small scale (5 workers) all schemes, including PKG, keep the imbalance
/// low on the Wikipedia-like workload — the other half of Figure 1.
#[test]
fn pkg_is_fine_at_small_scale() {
    let dataset = SyntheticDataset::wikipedia_like(Scale::Smoke, 6);
    let mut stream = dataset.stream();
    let pkg = Simulator::run(
        SimulationConfig::new(PartitionerKind::Pkg, 5),
        stream.as_mut(),
    );
    assert!(
        pkg.imbalance < 0.01,
        "PKG imbalance at n=5 is {}",
        pkg.imbalance
    );
}

/// The D-Choices solver reproduces the introduction's example: under Zipf
/// z = 2.0 the hottest key is ~60% of the stream, so for any deployment
/// larger than 3 workers two choices cannot balance the load and the solver
/// must ask for (substantially) more.
#[test]
fn solver_reacts_to_the_sixty_percent_key() {
    let dist = ZipfDistribution::new(10_000, 2.0);
    assert!(dist.p1() > 0.55);
    for workers in [10usize, 50, 100] {
        let theta = 1.0 / (5.0 * workers as f64);
        let head: Vec<f64> = dist
            .probabilities()
            .iter()
            .copied()
            .take_while(|&p| p >= theta)
            .collect();
        let tail = 1.0 - head.iter().sum::<f64>();
        let d = find_optimal_choices(&head, tail, workers, 1e-4).effective_d(workers);
        assert!(
            d as f64 >= 0.5 * workers as f64,
            "n={workers}: d={d} too small for a 60% hot key"
        );
    }
}

/// Figure 4's trend: the fraction of workers D-Choices dedicates to the head
/// stays below 1 at scale, and the head cardinality (Figure 3) stays small.
#[test]
fn analysis_figures_have_expected_shape() {
    let skews = [0.4f64, 1.2, 2.0];
    let fractions = d_fraction_vs_skew(&[50, 100], 10_000, &skews, 1e-4);
    assert!(fractions
        .iter()
        .all(|r| r.fraction <= 1.0 && r.fraction > 0.0));
    let cards = head_cardinality_vs_skew(&[50, 100], 10_000, &skews);
    assert!(cards.iter().all(|r| r.cardinality <= 5 * r.workers));
    let memory = memory_overhead_vs_skew(&[50], 10_000, 10_000_000, &skews, 1e-4);
    assert!(memory
        .iter()
        .all(|r| r.vs_pkg_pct >= -1e-9 && r.vs_sg_pct <= 1e-9));
}

/// Cross-substrate agreement: the SpaceSaving estimate of the hottest key's
/// frequency matches the generator's exact distribution closely.
#[test]
fn sketch_tracks_the_generator() {
    let keys = 1_000;
    let z = 1.5;
    let mut gen = ZipfGenerator::new(keys, z, 9);
    let mut sketch = SpaceSaving::new(200);
    let messages = 200_000u64;
    for _ in 0..messages {
        sketch.observe(&gen.next_key());
    }
    let hottest = gen.key_of(1);
    let estimated = sketch.frequency(&hottest);
    let exact = gen.distribution().p1();
    assert!(
        (estimated - exact).abs() < 0.02,
        "estimated p1 {estimated} vs exact {exact}"
    );
}

/// The facade's boxed partitioners, the simulator and the engine all agree
/// on the basic invariant: every message lands on a valid worker and the
/// totals add up.
#[test]
fn facade_simulator_and_engine_agree_on_accounting() {
    // Facade-level routing.
    let cfg = PartitionConfig::new(16).with_seed(1);
    let mut p = build_partitioner::<u64>(PartitionerKind::DChoices, &cfg);
    for i in 0..10_000u64 {
        assert!(p.route(&(i % 97)) < 16);
    }
    assert_eq!(p.local_loads().total(), 10_000);

    // Simulator-level accounting.
    let mut stream = ZipfGenerator::with_limit(500, 1.0, 2, 20_000);
    let sim = Simulator::run(
        SimulationConfig::new(PartitionerKind::DChoices, 16),
        &mut stream,
    );
    assert_eq!(sim.messages, 20_000);
    assert_eq!(sim.worker_loads.iter().sum::<u64>(), 20_000);

    // Engine-level accounting.
    let result = Topology::new(EngineConfig::smoke(PartitionerKind::DChoices, 1.4)).run();
    assert_eq!(result.processed, result.worker_counts.iter().sum::<u64>());
    assert_eq!(result.latency.samples, result.processed);
}

/// The engine reproduces the Figure 13/14 ordering at smoke scale under
/// extreme skew: the head-aware schemes do not lose to key grouping on
/// balance, and shuffle grouping replicates the most state.
#[test]
fn engine_orders_schemes_as_the_paper_does() {
    let base = EngineConfig::smoke(PartitionerKind::Pkg, 2.0);
    let kg = Topology::new(EngineConfig {
        kind: PartitionerKind::KeyGrouping,
        ..base.clone()
    })
    .run();
    let wc = Topology::new(EngineConfig {
        kind: PartitionerKind::WChoices,
        ..base.clone()
    })
    .run();
    let sg = Topology::new(EngineConfig {
        kind: PartitionerKind::ShuffleGrouping,
        ..base
    })
    .run();
    assert!(
        wc.imbalance <= kg.imbalance,
        "W-C {} vs KG {}",
        wc.imbalance,
        kg.imbalance
    );
    assert!(wc.total_state_replicas() <= sg.total_state_replicas());
    assert!(kg.total_state_replicas() <= wc.total_state_replicas());
}

/// Concept drift (the cashtag dataset) is harder: the same scheme shows
/// higher imbalance on CT-like data than on the stationary WP-like data at
/// the same scale, yet W-Choices still keeps it workable.
#[test]
fn drift_makes_balancing_harder_but_not_impossible() {
    let ct = SyntheticDataset::cashtag_like(Scale::Smoke, 3);
    let wp = SyntheticDataset::wikipedia_like(Scale::Smoke, 3);
    let imb = |ds: &SyntheticDataset, kind| {
        let mut stream = ds.stream();
        Simulator::run(SimulationConfig::new(kind, 50), stream.as_mut()).imbalance
    };
    let ct_wc = imb(&ct, PartitionerKind::WChoices);
    let ct_pkg = imb(&ct, PartitionerKind::Pkg);
    assert!(ct_wc <= ct_pkg, "W-C should not lose to PKG on CT");
    // Sanity rather than strict ordering (smoke-scale CT is small): both
    // datasets stay clearly below the catastrophic KG-style imbalance.
    let wp_wc = imb(&wp, PartitionerKind::WChoices);
    assert!(ct_wc < 0.1 && wp_wc < 0.1);
}

/// The solver switches to W-Choices semantics when asked to balance an
/// impossible head on a big cluster, and that decision is what the
/// HeadAware partitioner exposes.
#[test]
fn switch_to_w_choices_is_reachable_through_the_public_api() {
    let decision = find_optimal_choices(&[0.95], 0.05, 100, 1e-6);
    assert_eq!(decision, ChoicesDecision::SwitchToW);
    assert_eq!(decision.effective_d(100), 100);
}

/// Deterministic reproducibility across the whole stack: the same seeds give
/// identical simulation results.
#[test]
fn full_stack_determinism() {
    let run = || {
        let mut stream = ZipfGenerator::with_limit(2_000, 1.7, 31, 30_000);
        Simulator::run(
            SimulationConfig::new(PartitionerKind::DChoices, 25),
            &mut stream,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.worker_loads, b.worker_loads);
    assert_eq!(a.imbalance, b.imbalance);
    assert!(imbalance(&a.worker_loads) >= 0.0);
}
