//! # slb — Scalable Load Balancing for distributed stream processing
//!
//! A reproduction of *"When Two Choices Are not Enough: Balancing at Scale in
//! Distributed Stream Processing"* (Nasir, De Francisci Morales, Kourtellis,
//! Serafini — ICDE 2016).
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`hash`] — hashing substrate (xxHash64, Murmur3, hash-function families).
//! * [`sketch`] — heavy-hitter substrate (SpaceSaving, Misra-Gries, Count-Min).
//! * [`workloads`] — key distributions and synthetic datasets (Zipf, WP/TW/CT-like).
//! * [`core`] — the paper's contribution: the grouping schemes (key grouping,
//!   shuffle grouping, partial key grouping, D-Choices, W-Choices, round-robin
//!   head) behind one `Partitioner` trait, plus the D-Choices solver.
//! * [`simulator`] — the stream-replay simulator used for the imbalance
//!   experiments (Figures 1 and 3–12).
//! * [`engine`] — a threaded mini-DSPE used for the throughput/latency
//!   experiments (Figures 13–14), with a pluggable channel transport.
//! * [`net`] — the networked transport backend (length-prefixed wire codec,
//!   TCP channels, the `slb-node` multi-process cluster runner).
//!
//! ## Quickstart
//!
//! ```rust
//! use slb::core::{PartitionerKind, build_partitioner, PartitionConfig};
//! use slb::workloads::zipf::ZipfGenerator;
//!
//! // 50 downstream workers, D-Choices routing with the paper's defaults.
//! let cfg = PartitionConfig::new(50).with_seed(42);
//! let mut partitioner = build_partitioner(PartitionerKind::DChoices, &cfg);
//!
//! // Route a small skewed stream and inspect the imbalance.
//! let mut zipf = ZipfGenerator::new(10_000, 1.5, 42);
//! for _ in 0..100_000 {
//!     let key = zipf.next_key();
//!     let worker = partitioner.route(&key.to_string());
//!     assert!(worker < 50);
//! }
//! ```

pub use slb_core as core;
pub use slb_engine as engine;
pub use slb_hash as hash;
pub use slb_net as net;
pub use slb_simulator as simulator;
pub use slb_sketch as sketch;
pub use slb_workloads as workloads;
