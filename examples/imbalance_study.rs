//! Imbalance study: use the simulator to reproduce the core finding of the
//! paper (Figure 1) on a Wikipedia-like workload — two choices stop being
//! enough as the number of workers grows.
//!
//! ```bash
//! cargo run --release --example imbalance_study
//! ```

use slb::core::PartitionerKind;
use slb::simulator::experiments::imbalance_vs_workers;
use slb::workloads::datasets::{Dataset, Scale, SyntheticDataset};

fn main() {
    let dataset = SyntheticDataset::wikipedia_like(Scale::Smoke, 11);
    let stats = dataset.stats();
    println!(
        "Workload: {} ({} messages, {} keys, p1 = {:.2}%)\n",
        stats.kind.symbol(),
        stats.messages,
        stats.keys,
        stats.p1 * 100.0
    );

    let schemes = [
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
    ];
    let workers = [5usize, 10, 20, 50, 100];
    let rows = imbalance_vs_workers(&[dataset], &schemes, &workers);

    println!("{:<8} {:>8} {:>16}", "scheme", "workers", "imbalance I(m)");
    for row in &rows {
        println!(
            "{:<8} {:>8} {:>16.3e}",
            row.scheme, row.workers, row.imbalance
        );
    }

    println!();
    println!("Reading the table: PKG's imbalance grows by orders of magnitude");
    println!("between 5 and 100 workers, while D-Choices and W-Choices stay low —");
    println!("the motivation for giving hot keys more than two choices.");
}
