//! Storm-like topology: run the threaded mini-DSPE and compare throughput
//! and latency across grouping schemes, the way Figures 13–14 do.
//!
//! ```bash
//! cargo run --release --example storm_like_topology
//! ```
//!
//! Sources generate a Zipf stream, route it with the chosen grouping scheme
//! and push tuples into the workers' bounded queues; workers burn a fixed
//! amount of CPU per tuple. The most loaded worker is the bottleneck, so a
//! better-balanced scheme finishes sooner (higher throughput) and keeps
//! queueing delay (latency percentiles) lower.

use slb::core::PartitionerKind;
use slb::engine::topology::compare_schemes;
use slb::engine::EngineConfig;

fn main() {
    let skew = 2.0;
    // Laptop-sized run: 4 sources, 8 workers, 200k messages, 50 µs/tuple.
    let base = EngineConfig::laptop(PartitionerKind::Pkg, skew).with_seed(7);
    println!(
        "mini-DSPE: {} sources, {} workers, {} messages, {} µs of work per tuple, Zipf z={skew}\n",
        base.sources, base.workers, base.messages, base.service_time_us
    );

    let schemes = [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ];
    let results = compare_schemes(&base, &schemes);

    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>12} {:>12}",
        "scheme", "events/s", "imbalance", "p50 (ms)", "p99 (ms)", "state keys"
    );
    for r in &results {
        println!(
            "{:<8} {:>14.0} {:>12.4} {:>12.2} {:>12.2} {:>12}",
            r.scheme,
            r.throughput_eps,
            r.imbalance,
            r.latency.p50_us as f64 / 1_000.0,
            r.latency.p99_us as f64 / 1_000.0,
            r.total_state_replicas()
        );
    }

    let pkg = results
        .iter()
        .find(|r| r.scheme == "PKG")
        .expect("PKG result");
    let wc = results
        .iter()
        .find(|r| r.scheme == "W-C")
        .expect("W-C result");
    println!(
        "\nW-Choices delivers {:.2}x the throughput of PKG at this skew, with {:.0}% lower p99 latency.",
        wc.throughput_eps / pkg.throughput_eps,
        100.0 * (1.0 - wc.latency.p99_us as f64 / pkg.latency.p99_us as f64)
    );
}
