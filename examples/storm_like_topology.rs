//! Storm-like topology: run the threaded mini-DSPE's full three-operator
//! pipeline (source → worker → aggregator) and compare throughput and
//! latency across grouping schemes, the way Figures 13–14 do.
//!
//! ```bash
//! cargo run --release --example storm_like_topology
//! ```
//!
//! Sources generate a Zipf stream, route it with the chosen grouping scheme
//! and push tuples into the workers' bounded queues; workers burn a fixed
//! amount of CPU per tuple and accumulate per-window partial counts; the
//! key-hash-sharded aggregator stage merges the partials into final
//! per-window results. The most loaded worker is the bottleneck, so a
//! better-balanced scheme finishes sooner (higher throughput) and keeps
//! queueing delay (latency percentiles) lower — while the merged windowed
//! output is identical for every scheme, which is the whole point of having
//! the aggregation stage behind key splitting.

use slb::core::{CountAggregate, PartitionerKind};
use slb::engine::topology::compare_schemes;
use slb::engine::{exact_windowed_counts, EngineConfig, Topology};

fn main() {
    let skew = 2.0;
    // Laptop-sized run: 4 sources, 8 workers, 200k messages, 50 µs/tuple.
    let base = EngineConfig::laptop(PartitionerKind::Pkg, skew).with_seed(7);
    println!(
        "mini-DSPE: {} sources, {} workers, {} aggregator shard(s), {} messages, \
         {}-tuple windows, {} µs of work per tuple, Zipf z={skew}\n",
        base.sources,
        base.workers,
        base.aggregators,
        base.messages,
        base.window_size,
        base.service_time_us
    );

    let schemes = [
        PartitionerKind::KeyGrouping,
        PartitionerKind::Pkg,
        PartitionerKind::DChoices,
        PartitionerKind::WChoices,
        PartitionerKind::ShuffleGrouping,
    ];
    let results = compare_schemes(&base, &schemes);

    println!(
        "{:<8} {:>14} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "scheme", "events/s", "imbalance", "p50 (ms)", "p99 (ms)", "state keys", "agg p99 (µs)"
    );
    for r in &results {
        println!(
            "{:<8} {:>14.0} {:>12.4} {:>12.2} {:>12.2} {:>12} {:>14}",
            r.scheme,
            r.throughput_eps,
            r.imbalance,
            r.latency.p50_us as f64 / 1_000.0,
            r.latency.p99_us as f64 / 1_000.0,
            r.total_state_replicas(),
            r.aggregator_stage.latency.p99_us
        );
    }

    let pkg = results
        .iter()
        .find(|r| r.scheme == "PKG")
        .expect("PKG result");
    let wc = results
        .iter()
        .find(|r| r.scheme == "W-C")
        .expect("W-C result");
    println!(
        "\nW-Choices delivers {:.2}x the throughput of PKG at this skew, with {:.0}% lower p99 latency.",
        wc.throughput_eps / pkg.throughput_eps,
        100.0 * (1.0 - wc.latency.p99_us as f64 / pkg.latency.p99_us as f64)
    );

    // The soundness invariant, demonstrated rather than asserted: the merged
    // windowed counts of a key-splitting run equal the single-threaded exact
    // reference, window for window, key for key.
    let windowed = Topology::new(base.clone()).run_windowed(CountAggregate);
    let reference = exact_windowed_counts(&base);
    let identical = windowed.windows.len() == reference.len()
        && windowed
            .windows
            .iter()
            .all(|(w, counts)| reference.get(w) == Some(counts));
    println!(
        "windowed aggregation: {} windows finalized across {} shard(s); merged counts identical \
         to the exact single-threaded reference: {}",
        windowed.result.windows, windowed.result.aggregators, identical
    );
    assert!(identical, "key-splitting soundness invariant violated");
}
