//! Trending topics: a stateful streaming aggregation with string keys and
//! concept drift, the scenario that motivates head-aware routing.
//!
//! ```bash
//! cargo run --release --example trending_topics
//! ```
//!
//! A stream of hashtag mentions is partitioned over a pool of counters. The
//! set of trending hashtags changes every "hour" (epoch), as it would on a
//! real social feed — exactly the cashtag behaviour from the paper. The
//! example shows how the head tracker follows the drift and how W-Choices
//! keeps the counters balanced while key grouping overloads whichever
//! counter owns the current hot tag.

use std::collections::HashMap;

use slb::core::{build_partitioner, imbalance, PartitionConfig, PartitionerKind};
use slb::workloads::drift::DriftingGenerator;
use slb::workloads::zipf::ZipfGenerator;
use slb::workloads::KeyStream;

/// Turns the numeric key identifiers of the synthetic stream into
/// hashtag-looking strings, as an application would see them.
fn tag_name(key: u64) -> String {
    format!("#topic{:x}", key & 0xffff_ffff)
}

fn main() {
    let workers = 20;
    let epochs = 6u64;
    let messages_per_epoch = 100_000u64;
    let messages = epochs * messages_per_epoch;

    // Hashtag popularity is heavily skewed (z = 1.6) and the mapping from
    // rank to actual tag is re-drawn every epoch.
    let base = ZipfGenerator::with_limit(5_000, 1.6, 7, messages);
    let mut stream = DriftingGenerator::new(base, messages_per_epoch, 99);

    let mut schemes: Vec<(PartitionerKind, _)> =
        [PartitionerKind::KeyGrouping, PartitionerKind::WChoices]
            .into_iter()
            .map(|kind| {
                let cfg = PartitionConfig::new(workers).with_seed(3);
                (kind, build_partitioner::<String>(kind, &cfg))
            })
            .collect();

    // Per-scheme, per-worker counters: worker -> (tag -> count).
    let mut states: Vec<Vec<HashMap<String, u64>>> =
        vec![vec![HashMap::new(); workers]; schemes.len()];

    let mut processed = 0u64;
    while let Some(key) = stream.next_key() {
        let tag = tag_name(key);
        for (i, (_, partitioner)) in schemes.iter_mut().enumerate() {
            let worker = partitioner.route(&tag);
            *states[i][worker].entry(tag.clone()).or_insert(0) += 1;
        }
        processed += 1;
        if processed % messages_per_epoch == 0 {
            println!(
                "-- after epoch {} ({processed} mentions) --",
                processed / messages_per_epoch
            );
            for (i, (kind, partitioner)) in schemes.iter().enumerate() {
                let loads = partitioner.local_loads();
                let replicas: usize = {
                    // How many (tag, worker) state entries exist in total.
                    let mut distinct = 0usize;
                    for worker_state in &states[i] {
                        distinct += worker_state.len();
                    }
                    distinct
                };
                println!(
                    "   {:<4} imbalance {:>10.6}   state replicas {:>8}",
                    kind.symbol(),
                    imbalance(loads.counts()),
                    replicas
                );
            }
        }
    }

    // Show the current top tags as reconstructed by merging partial states
    // (the aggregation step a downstream consumer would run).
    let (kind, _) = &schemes[1];
    println!(
        "\nTop tags according to the {} partitioned state:",
        kind.symbol()
    );
    let mut merged: HashMap<&str, u64> = HashMap::new();
    for worker_state in &states[1] {
        for (tag, count) in worker_state {
            *merged.entry(tag.as_str()).or_insert(0) += count;
        }
    }
    let mut top: Vec<_> = merged.into_iter().collect();
    top.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    for (tag, count) in top.into_iter().take(5) {
        println!("   {tag:<16} {count}");
    }
}
