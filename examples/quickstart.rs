//! Quickstart: route a skewed stream with every grouping scheme and compare
//! the resulting load imbalance.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! This is the smallest end-to-end use of the library: build a partitioner,
//! feed it keys, inspect its local load vector. For the full simulation and
//! engine APIs see the other examples.

use slb::core::{build_partitioner, imbalance, PartitionConfig, PartitionerKind};
use slb::workloads::zipf::ZipfGenerator;

fn main() {
    let workers = 50;
    let messages = 500_000u64;
    let skew = 1.8;

    println!("Routing {messages} messages with Zipf(z={skew}) keys to {workers} workers\n");
    println!(
        "{:<8} {:>14} {:>22}",
        "scheme", "imbalance", "max worker share (%)"
    );

    for kind in PartitionerKind::ALL {
        let config = PartitionConfig::new(workers).with_seed(42);
        let mut partitioner = build_partitioner::<u64>(kind, &config);
        let mut stream = ZipfGenerator::new(10_000, skew, 42);
        for _ in 0..messages {
            let key = stream.next_key();
            partitioner.route(&key);
        }
        let loads = partitioner.local_loads();
        let max_share = *loads.counts().iter().max().unwrap() as f64 / messages as f64 * 100.0;
        println!(
            "{:<8} {:>14.6} {:>22.2}",
            kind.symbol(),
            imbalance(loads.counts()),
            max_share
        );
    }

    println!();
    println!("Expected shape: KG worst (the hot key pins one worker),");
    println!("PKG limited by two choices at this scale, D-C/W-C/RR near SG's ideal balance.");
}
